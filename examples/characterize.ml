(* Full characterization of a synthesized design with the extended analysis
   suite: exact poles/zeros from the circuit pencil, unity-feedback
   stability, step response (ASCII plot), thermal noise and Monte-Carlo
   yield — plus a SPICE deck to cross-check the design externally.

   Run with: dune exec examples/characterize.exe *)

module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Netlist = Into_circuit.Netlist

let () =
  let spec = Spec.s1 in
  (* A three-stage design with feedforward + Miller compensation. *)
  let topo =
    Topology.make ~vin_v2:Subcircuit.No_conn
      ~vin_vout:(Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))
      ~v1_vout:(Subcircuit.Passive (Subcircuit.Rc Subcircuit.Series))
      ~v1_gnd:Subcircuit.No_conn ~v2_gnd:Subcircuit.No_conn
  in
  Printf.printf "Design: %s\nSpec:   %s\n\n" (Topology.to_string topo) (Spec.to_string spec);

  let rng = Into_util.Rng.create ~seed:34 in
  let sizing =
    match Into_core.Sizing.best (Into_core.Sizing.optimize ~rng ~spec topo) with
    | Some o -> o.Into_core.Sizing.sizing
    | None -> failwith "sizing failed"
  in
  (match Perf.evaluate topo ~sizing ~cl_f:spec.Spec.cl_f with
  | Some p ->
    Printf.printf "Sized:  %s  (meets %s: %b)\n\n" (Perf.to_string p ~cl_f:spec.Spec.cl_f)
      spec.Spec.name (Perf.satisfies p spec)
  | None -> ());

  let netlist = Netlist.build topo ~sizing ~cl_f:spec.Spec.cl_f in

  (* Exact poles and zeros from the (G, C) pencil. *)
  let pz = Into_circuit.Poles_zeros.analyze netlist in
  print_endline (Into_circuit.Poles_zeros.describe pz);
  Printf.printf "open-loop stable: %b\n" (Into_circuit.Poles_zeros.is_stable pz);
  let closed = Into_circuit.Poles_zeros.closed_loop_poles netlist in
  Printf.printf "unity-feedback stable: %b\n\n"
    (List.for_all (fun p -> p.Complex.re < 0.0) closed);

  (* Closed-loop step response. *)
  let w = Into_circuit.Transient.step_response netlist in
  let pts =
    Array.to_list (Array.mapi (fun i t -> (t, w.Into_circuit.Transient.vout.(i))) w.Into_circuit.Transient.time_s)
  in
  print_endline "Closed-loop unit step response:";
  print_string
    (Into_util.Ascii_plot.plot ~height:14 ~x_label:"t (s)" ~y_label:"vout"
       [ ("step", pts) ]);
  (match Into_circuit.Transient.measure w with
  | None -> print_endline "no DC operating point: settling metrics unavailable\n"
  | Some m ->
    Printf.printf "overshoot %.1f%%  settling %s\n\n" m.Into_circuit.Transient.overshoot_pct
      (match m.Into_circuit.Transient.settling_time_s with
      | Some t -> Printf.sprintf "%.3g s" t
      | None -> "(never)"));

  (* Noise and Monte-Carlo yield. *)
  let nz = Into_circuit.Noise.analyze netlist in
  Printf.printf "Noise: %.3g Vrms output, %s input-referred (%d sources)\n"
    nz.Into_circuit.Noise.output_rms_v
    (match nz.Into_circuit.Noise.input_spot_nv with
    | Some v -> Printf.sprintf "%.1f nV/sqrt(Hz)" v
    | None -> "n/a")
    nz.Into_circuit.Noise.n_sources;
  let mc =
    Into_circuit.Montecarlo.run ~rng:(Into_util.Rng.create ~seed:32) ~spec topo ~sizing
  in
  Printf.printf "Monte-Carlo (5%% component spread, %d trials): yield %.0f%%, worst PM %.1f deg\n\n"
    mc.Into_circuit.Montecarlo.trials
    (100.0 *. mc.Into_circuit.Montecarlo.yield)
    mc.Into_circuit.Montecarlo.worst_pm_deg;

  (* SPICE deck for external cross-checking. *)
  print_endline "SPICE deck (first lines):";
  let deck = Into_circuit.Spice_export.behavioral topo ~sizing ~cl_f:spec.Spec.cl_f in
  List.iteri
    (fun i line -> if i < 12 then print_endline ("  " ^ line))
    (String.split_on_char '\n' deck)
