(* Tests for the static verification layer: typed diagnostics, netlist and
   topology lint, the whole-design-space sweep and the evaluator gate.
   Seeded-bad netlists must be rejected with the exact expected code before
   any matrix is assembled. *)

module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Params = Into_circuit.Params
module Netlist = Into_circuit.Netlist
module Spec = Into_circuit.Spec
module Diagnostic = Into_analysis.Diagnostic
module Netlist_lint = Into_analysis.Netlist_lint
module Topology_lint = Into_analysis.Topology_lint
module Sweep = Into_analysis.Sweep

let has code diags = List.exists (fun d -> d.Diagnostic.code = code) diags

let codes_of diags =
  List.map (fun d -> Diagnostic.code_id d.Diagnostic.code) diags
  |> String.concat ","

let check_has what code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s (got: %s)" what (Diagnostic.code_id code)
       (codes_of diags))
    true (has code diags)

let gm_inst name =
  { Netlist.gm_name = name; gm_value = 1e-3; gm_over_id = 15.0; bias_a = 60e-6 }

(* Minimal well-formed hand netlist: vin -> v1 -> vout, every node loaded. *)
let clean_prims =
  [
    Netlist.Vccs { ctrl = Netlist.Vin; out = Netlist.v1; gm = -1e-3; pole_hz = infinity };
    Netlist.Conductance (Netlist.v1, Netlist.Gnd, 1e-5);
    Netlist.Capacitance (Netlist.v1, Netlist.Gnd, 50e-15);
    Netlist.Vccs { ctrl = Netlist.v1; out = Netlist.vout; gm = 2e-3; pole_hz = infinity };
    Netlist.Conductance (Netlist.vout, Netlist.Gnd, 1e-5);
    Netlist.Capacitance (Netlist.vout, Netlist.Gnd, 10e-12);
    Netlist.Conductance (Netlist.v2, Netlist.Gnd, 1e-5);
    Netlist.Conductance (Netlist.v2, Netlist.v1, 1e-6);
  ]

let hand_netlist ?(n_unknowns = 3) ?(gms = [ gm_inst "stage1"; gm_inst "stage2" ])
    prims =
  { Netlist.prims; n_unknowns; power_w = 100e-6; gms }

(* --- diagnostic plumbing --- *)

let test_code_table () =
  Alcotest.(check int) "14 codes" 14 (List.length Diagnostic.all_codes);
  let ids = List.map Diagnostic.code_id Diagnostic.all_codes in
  Alcotest.(check (list string))
    "identifier order"
    [ "E101"; "E102"; "E103"; "E104"; "E105"; "E106"; "E107"; "E108"; "E109";
      "E110"; "E111"; "W201"; "W202"; "I301" ]
    ids;
  List.iter
    (fun c ->
      let id = Diagnostic.code_id c in
      let expected =
        match id.[0] with
        | 'E' -> Diagnostic.Error
        | 'W' -> Diagnostic.Warning
        | _ -> Diagnostic.Info
      in
      Alcotest.(check string)
        (id ^ " severity matches prefix")
        (Diagnostic.severity_name expected)
        (Diagnostic.severity_name (Diagnostic.severity_of_code c)))
    Diagnostic.all_codes

let test_severity_partition () =
  let ds =
    [
      Diagnostic.make Diagnostic.No_compensation "i";
      Diagnostic.make Diagnostic.Floating_node "e";
      Diagnostic.make Diagnostic.Zero_value "w";
    ]
  in
  Alcotest.(check int) "errors" 1 (List.length (Diagnostic.errors ds));
  Alcotest.(check bool) "has_errors" true (Diagnostic.has_errors ds);
  Alcotest.(check int) "warning count" 1 (Diagnostic.count Diagnostic.Warning ds);
  match Diagnostic.by_severity ds with
  | { Diagnostic.severity = Diagnostic.Error; _ } :: _ -> ()
  | _ -> Alcotest.fail "by_severity must put the error first"

(* --- seeded-bad netlists --- *)

let test_clean_hand_netlist () =
  let diags = Netlist_lint.check (hand_netlist clean_prims) in
  Alcotest.(check string) "no diagnostics" "" (codes_of diags)

let test_floating_node () =
  (* v2 appears in no element: its MNA row is structurally singular. *)
  let prims =
    List.filter
      (function
        | Netlist.Conductance (Netlist.N 1, _, _) -> false
        | _ -> true)
      clean_prims
  in
  let diags = Netlist_lint.check (hand_netlist prims) in
  check_has "isolated v2" Diagnostic.Floating_node diags;
  Alcotest.(check int) "only that error" 1 (List.length (Diagnostic.errors diags))

let test_dangling_vccs_ctrl () =
  let prims =
    clean_prims
    @ [ Netlist.Vccs { ctrl = Netlist.N 3; out = Netlist.vout; gm = 1e-3; pole_hz = infinity } ]
  in
  let diags = Netlist_lint.check (hand_netlist ~n_unknowns:4 prims) in
  check_has "undriven control node" Diagnostic.Dangling_vccs_ctrl diags

let test_dangling_vccs_out () =
  let prims =
    clean_prims
    @ [ Netlist.Vccs { ctrl = Netlist.v1; out = Netlist.N 3; gm = 1e-3; pole_hz = infinity } ]
  in
  let diags = Netlist_lint.check (hand_netlist ~n_unknowns:4 prims) in
  check_has "unloaded output node" Diagnostic.Dangling_vccs_out diags

let test_no_signal_path () =
  (* Every node is DC-grounded, but nothing connects vin to the circuit. *)
  let prims =
    [
      Netlist.Conductance (Netlist.v1, Netlist.Gnd, 1e-5);
      Netlist.Conductance (Netlist.v2, Netlist.Gnd, 1e-5);
      Netlist.Conductance (Netlist.vout, Netlist.Gnd, 1e-5);
      Netlist.Conductance (Netlist.v1, Netlist.v2, 1e-6);
      Netlist.Conductance (Netlist.v1, Netlist.vout, 1e-6);
    ]
  in
  let diags = Netlist_lint.check (hand_netlist ~gms:[] prims) in
  check_has "unreachable vout" Diagnostic.No_signal_path diags;
  Alcotest.(check int) "only that error" 1 (List.length (Diagnostic.errors diags))

let test_node_out_of_range () =
  let prims = Netlist.Conductance (Netlist.N 7, Netlist.Gnd, 1e-5) :: clean_prims in
  let diags = Netlist_lint.check (hand_netlist prims) in
  check_has "index 7 of 3" Diagnostic.Node_out_of_range diags

let test_non_finite_value () =
  let prims = Netlist.Capacitance (Netlist.v1, Netlist.Gnd, Float.nan) :: clean_prims in
  let diags = Netlist_lint.check (hand_netlist prims) in
  check_has "NaN capacitance" Diagnostic.Non_finite_value diags

let test_negative_value () =
  let prims = Netlist.Conductance (Netlist.v1, Netlist.Gnd, -1e-4) :: clean_prims in
  let diags = Netlist_lint.check (hand_netlist prims) in
  check_has "negative conductance" Diagnostic.Nonpositive_value diags

let test_duplicate_gm_name () =
  let nl = hand_netlist ~gms:[ gm_inst "stage1"; gm_inst "stage1" ] clean_prims in
  let diags = Netlist_lint.check nl in
  check_has "duplicate name" Diagnostic.Duplicate_gm_name diags

let test_negative_gm_is_legal () =
  (* Inverting stages carry signed gm; the linter must not flag them. *)
  let diags = Netlist_lint.check (hand_netlist clean_prims) in
  Alcotest.(check bool) "no value errors" false (Diagnostic.has_errors diags)

(* --- topology lint --- *)

let test_topology_nmc_clean () =
  let diags = Topology_lint.check (Topology.nmc ()) in
  Alcotest.(check string) "nmc audits clean" "" (codes_of (Diagnostic.errors diags))

let test_topology_no_compensation_info () =
  let topo =
    Topology.set
      (Topology.set (Topology.nmc ()) Topology.V1_vout Subcircuit.No_conn)
      Topology.Vin_vout Subcircuit.No_conn
  in
  let diags = Topology_lint.check topo in
  check_has "uncompensated design" Diagnostic.No_compensation diags;
  Alcotest.(check bool) "info only, not an error" false (Diagnostic.has_errors diags)

let test_topology_index_roundtrip () =
  List.iter
    (fun idx ->
      match Diagnostic.errors (Topology_lint.check_index idx) with
      | [] -> ()
      | d :: _ ->
        Alcotest.failf "index %d: unexpected %s" idx (Diagnostic.to_string d))
    [ 0; 1; 17424; Topology.space_size - 1 ];
  check_has "out-of-range index" Diagnostic.Index_mismatch
    (Topology_lint.check_index Topology.space_size)

(* --- evaluator gate --- *)

let test_gate_passes_valid_topologies () =
  (* The evaluator's gate runs exactly these diagnostics before any
     simulation; a topology with Error findings becomes [Rejected] and
     costs zero budget.  Every constructible topology must pass. *)
  List.iter
    (fun idx ->
      let topo = Topology.of_index idx in
      let diags = Into_core.Evaluator.static_diagnostics ~spec:Spec.s1 topo in
      Alcotest.(check string)
        (Printf.sprintf "index %d passes the gate" idx)
        "" (codes_of (Diagnostic.errors diags)))
    [ 0; 17424; Topology.space_size - 1 ]

(* --- whole-design-space sweep --- *)

let test_full_sweep_is_clean () =
  let report = Sweep.run () in
  Alcotest.(check int) "whole space checked" Topology.space_size report.Sweep.checked;
  Alcotest.(check int) "zero errors" 0 report.Sweep.errors;
  Alcotest.(check int) "zero warnings" 0 report.Sweep.warnings;
  Alcotest.(check int) "no failures" 0 (List.length report.Sweep.failures)

let () =
  Alcotest.run "into_analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "code table" `Quick test_code_table;
          Alcotest.test_case "severity partition" `Quick test_severity_partition;
        ] );
      ( "netlist_lint",
        [
          Alcotest.test_case "clean hand netlist" `Quick test_clean_hand_netlist;
          Alcotest.test_case "floating node E101" `Quick test_floating_node;
          Alcotest.test_case "dangling ctrl E102" `Quick test_dangling_vccs_ctrl;
          Alcotest.test_case "dangling out E103" `Quick test_dangling_vccs_out;
          Alcotest.test_case "no signal path E104" `Quick test_no_signal_path;
          Alcotest.test_case "out of range E105" `Quick test_node_out_of_range;
          Alcotest.test_case "non-finite E106" `Quick test_non_finite_value;
          Alcotest.test_case "negative value E107" `Quick test_negative_value;
          Alcotest.test_case "duplicate gm E108" `Quick test_duplicate_gm_name;
          Alcotest.test_case "signed gm legal" `Quick test_negative_gm_is_legal;
        ] );
      ( "topology_lint",
        [
          Alcotest.test_case "nmc clean" `Quick test_topology_nmc_clean;
          Alcotest.test_case "no compensation I301" `Quick
            test_topology_no_compensation_info;
          Alcotest.test_case "index roundtrip E109" `Quick
            test_topology_index_roundtrip;
        ] );
      ( "gate",
        [
          Alcotest.test_case "static gate passes valid topologies" `Quick
            test_gate_passes_valid_topologies;
        ] );
      ( "sweep",
        [ Alcotest.test_case "all 30625 indices clean" `Quick test_full_sweep_is_clean ] );
    ]
