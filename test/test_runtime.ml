(* Tests for Into_runtime: the domain pool, the persistent outcome cache
   (round-trip, corruption tolerance), the checkpoint journal
   (resume-exactly-once) and the parallel-determinism guarantee of
   Campaign.execute. *)

module Pool = Into_runtime.Pool
module Cache = Into_runtime.Cache
module Checkpoint = Into_runtime.Checkpoint
module Exec = Into_runtime.Exec
module Progress = Into_runtime.Progress
module Methods = Into_experiments.Methods
module Campaign = Into_experiments.Campaign
module Evaluator = Into_core.Evaluator
module Sizing = Into_core.Sizing
module Topology = Into_circuit.Topology
module Spec = Into_circuit.Spec

(* --- temp-dir plumbing --- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let fresh_dir name =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "into_runtime_%s_%d_%d" name (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

(* --- Pool --- *)

let test_pool_preserves_order () =
  let xs = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs (fun i -> i * i) xs))
    [ 1; 2; 4; 0 ]

let test_pool_propagates_exceptions () =
  match Pool.map ~jobs:4 (fun i -> if i = 7 then raise Exit else i) (Array.init 16 Fun.id) with
  | _ -> Alcotest.fail "worker exception swallowed"
  | exception Exit -> ()

let test_pool_empty_input () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 (fun i -> i) [||])

(* --- Cache --- *)

let small_sizing = { Sizing.default_config with Sizing.n_init = 2; n_iter = 2 }

let nmc_task ~seed =
  Evaluator.task ~spec:Spec.s1 ~sizing_config:small_sizing ~seed (Topology.nmc ())

(* [No_sharing] canonicalizes the bytes: a cache-restored value has its own
   copies of subcircuits the computing run shared physically, and plain
   Marshal would encode that sharing difference as different backrefs. *)
let canonical v = Marshal.to_string v [ Marshal.No_sharing ]
let same_outcome a b = String.equal (canonical a) (canonical b)

let test_cache_round_trip () =
  let dir = fresh_dir "cache_rt" in
  let cache = Cache.create ~dir in
  let task = nmc_task ~seed:11 in
  let key = Cache.key_of_task task in
  Alcotest.(check bool) "cold miss" true (Cache.find cache ~key = None);
  let outcome = Evaluator.run_task task in
  Cache.store cache ~key outcome;
  (match Cache.find cache ~key with
  | None -> Alcotest.fail "stored entry not found"
  | Some back -> Alcotest.(check bool) "round-trips" true (same_outcome outcome back));
  Alcotest.(check int) "one store" 1 (Cache.stores cache);
  Alcotest.(check int) "one hit" 1 (Cache.hits cache);
  (* A distinct seed is a distinct key. *)
  Alcotest.(check bool) "seed in key" false
    (String.equal key (Cache.key_of_task (nmc_task ~seed:12)));
  rm_rf dir

let test_cache_corrupt_entry_recomputed () =
  let dir = fresh_dir "cache_corrupt" in
  let cache = Cache.create ~dir in
  let task = nmc_task ~seed:21 in
  let key = Cache.key_of_task task in
  let outcome = Evaluator.run_task task in
  Cache.store cache ~key outcome;
  (* Truncate every entry mid-envelope: loads must degrade to misses. *)
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      Unix.truncate path (min 3 (Unix.stat path).Unix.st_size))
    (Sys.readdir dir);
  Alcotest.(check bool) "truncated entry is a miss" true (Cache.find cache ~key = None);
  Alcotest.(check bool) "counted as corrupt" true (Cache.corrupt cache >= 1);
  (* The engine recomputes the same outcome and re-stores it. *)
  let exec = Exec.create ~cache ~jobs:1 () in
  let again = Exec.evaluate exec task in
  Alcotest.(check bool) "recomputed equals original" true (same_outcome outcome again);
  Alcotest.(check int) "one task computed" 1 (Exec.computed exec);
  (match Cache.find cache ~key with
  | None -> Alcotest.fail "recomputed entry not re-stored"
  | Some back -> Alcotest.(check bool) "re-stored" true (same_outcome outcome back));
  rm_rf dir

let test_cache_garbage_entry_recomputed () =
  let dir = fresh_dir "cache_garbage" in
  let cache = Cache.create ~dir in
  let task = nmc_task ~seed:31 in
  let key = Cache.key_of_task task in
  Cache.store cache ~key (Evaluator.run_task task);
  Array.iter
    (fun name ->
      let oc = open_out_bin (Filename.concat dir name) in
      output_string oc "not a marshal envelope";
      close_out oc)
    (Sys.readdir dir);
  Alcotest.(check bool) "garbage entry is a miss" true (Cache.find cache ~key = None);
  rm_rf dir

(* --- Checkpoint --- *)

let test_checkpoint_restores_valid_prefix () =
  let dir = fresh_dir "ckpt" in
  let path = Filename.concat dir "j.ckpt" in
  let j = Checkpoint.start ~path ~fresh:true in
  Checkpoint.append j ~key:"a" ~payload:"1";
  Checkpoint.append j ~key:"b" ~payload:"2";
  Checkpoint.close j;
  (* Simulate a crash mid-append: chop bytes off the journal tail. *)
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 5);
  let j2 = Checkpoint.start ~path ~fresh:false in
  Alcotest.(check int) "valid prefix restored" 1 (Checkpoint.restored j2);
  Alcotest.(check (option string)) "first record intact" (Some "1") (Checkpoint.find j2 ~key:"a");
  Alcotest.(check (option string)) "torn record dropped" None (Checkpoint.find j2 ~key:"b");
  (* The journal stays appendable after truncation. *)
  Checkpoint.append j2 ~key:"b" ~payload:"2";
  Checkpoint.close j2;
  let j3 = Checkpoint.start ~path ~fresh:false in
  Alcotest.(check int) "both records after repair" 2 (Checkpoint.restored j3);
  Checkpoint.close j3;
  let j4 = Checkpoint.start ~path ~fresh:true in
  Alcotest.(check int) "fresh start discards" 0 (Checkpoint.restored j4);
  Checkpoint.close j4;
  rm_rf dir

(* --- Campaign determinism and resume --- *)

let test_specs = [ Spec.s1; Spec.s5 ]
let test_methods = [ Methods.Fe_ga; Methods.Vgae_bo; Methods.Into_oa ]

let run_campaign ?progress ?runtime ?(runs = 2) () =
  Campaign.execute ?progress ?runtime ~methods:test_methods ~specs:test_specs
    ~scale:{ Methods.smoke_scale with Methods.runs } ~seed:7 ()

(* Everything but the wall clock, in a canonical byte form. *)
let fingerprint campaign =
  List.map
    (fun (r : Campaign.run) ->
      ( Methods.name r.Campaign.method_id,
        r.Campaign.spec.Spec.name,
        r.Campaign.run_index,
        canonical r.Campaign.trace ))
    campaign

let test_parallel_matches_serial () =
  let serial = run_campaign () in
  let parallel = run_campaign ~runtime:(Exec.create ~jobs:4 ()) () in
  Alcotest.(check bool) "-j 4 is byte-identical to serial" true
    (fingerprint serial = fingerprint parallel)

let test_resume_completes_exactly_once () =
  let dir = fresh_dir "resume" in
  let path = Filename.concat dir "campaign.ckpt" in
  let serial = run_campaign () in
  (* First invocation "interrupted" after the runs-per-cell=1 half of the
     grid: its journal holds exactly those cells. *)
  let ck1 = Checkpoint.start ~path ~fresh:true in
  let half = run_campaign ~runtime:(Exec.create ~jobs:1 ~checkpoint:ck1 ()) ~runs:1 () in
  Checkpoint.close ck1;
  let half_cells = List.length half in
  (* Second invocation resumes and finishes the full grid. *)
  let ck2 = Checkpoint.start ~path ~fresh:false in
  Alcotest.(check int) "journal carries the finished half" half_cells (Checkpoint.restored ck2);
  let restored = ref 0 and started = ref 0 and finished = ref 0 in
  let progress = function
    | Progress.Run_restored _ -> incr restored
    | Progress.Run_started _ -> incr started
    | Progress.Run_finished _ -> incr finished
    | Progress.Run_failed _ -> Alcotest.fail "no run should fail"
  in
  let full = run_campaign ~progress ~runtime:(Exec.create ~jobs:1 ~checkpoint:ck2 ()) () in
  Checkpoint.close ck2;
  Alcotest.(check int) "finished runs restored, not re-executed" half_cells !restored;
  Alcotest.(check int) "remaining runs executed exactly once"
    (List.length full - half_cells) !started;
  Alcotest.(check int) "every executed run finished" !started !finished;
  Alcotest.(check bool) "resumed campaign equals from-scratch" true
    (fingerprint full = fingerprint serial);
  rm_rf dir

let test_warm_cache_computes_nothing () =
  let dir = fresh_dir "warm" in
  let cold_exec = Exec.create ~jobs:1 ~cache:(Cache.create ~dir) () in
  let cold = run_campaign ~runtime:cold_exec ~runs:1 () in
  Alcotest.(check bool) "cold run computes" true (Exec.computed cold_exec > 0);
  let warm_exec = Exec.create ~jobs:1 ~cache:(Cache.create ~dir) () in
  let warm = run_campaign ~runtime:warm_exec ~runs:1 () in
  Alcotest.(check int) "warm rerun computes nothing" 0 (Exec.computed warm_exec);
  let stats = Exec.stats warm_exec in
  Alcotest.(check bool) "warm rerun hits the cache" true (stats.Exec.cache_hits > 0);
  Alcotest.(check int) "and misses nothing" 0 stats.Exec.cache_misses;
  Alcotest.(check bool) "warm equals cold" true (fingerprint cold = fingerprint warm);
  (* The summary line CI greps for. *)
  let summary = Exec.summary warm_exec in
  let needle = Printf.sprintf "cache hits: %d" stats.Exec.cache_hits in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary reports the hit count" true (contains summary needle);
  rm_rf dir

let () =
  Alcotest.run "into_runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved at any job count" `Quick test_pool_preserves_order;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_propagates_exceptions;
          Alcotest.test_case "empty input" `Quick test_pool_empty_input;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round trip" `Quick test_cache_round_trip;
          Alcotest.test_case "truncated entry recomputed" `Quick test_cache_corrupt_entry_recomputed;
          Alcotest.test_case "garbage entry skipped" `Quick test_cache_garbage_entry_recomputed;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "valid prefix survives a torn write" `Quick test_checkpoint_restores_valid_prefix ] );
      ( "campaign",
        [
          Alcotest.test_case "-j 4 identical to serial" `Slow test_parallel_matches_serial;
          Alcotest.test_case "resume runs each cell exactly once" `Slow test_resume_completes_exactly_once;
          Alcotest.test_case "warm cache computes nothing" `Slow test_warm_cache_computes_nothing;
        ] );
    ]
