(* Fault-tolerance tests: the Fail taxonomy, the NaN guards in the circuit
   layer, the retry supervisor, the deterministic chaos harness, and the
   end-to-end guarantees — a chaos campaign completes, recovers the
   fault-free results when every retry succeeds, reports exactly the
   injected faults in its ledger, and stays result-identical at any job
   count. *)

module Fail = Into_core.Fail
module Evaluator = Into_core.Evaluator
module Sizing = Into_core.Sizing
module Supervise = Into_runtime.Supervise
module Faultin = Into_runtime.Faultin
module Exec = Into_runtime.Exec
module Cache = Into_runtime.Cache
module Checkpoint = Into_runtime.Checkpoint
module Methods = Into_experiments.Methods
module Campaign = Into_experiments.Campaign
module Topology = Into_circuit.Topology
module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Netlist = Into_circuit.Netlist
module Noise = Into_circuit.Noise
module Transient = Into_circuit.Transient
module Wl = Into_graph.Wl
module Wl_gp = Into_gp.Wl_gp
module Circuit_graph = Into_graph.Circuit_graph
module Rng = Into_util.Rng

(* --- temp-dir plumbing (mirrors test_runtime.ml) --- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let fresh_dir name =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "into_chaos_%s_%d_%d" name (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- Fail taxonomy --- *)

let all_fails =
  [
    Fail.Singular;
    Fail.No_convergence;
    Fail.Non_finite "gbw_hz";
    Fail.Timeout;
    Fail.Worker_crash;
    Fail.Cache_corrupt;
    Fail.Other "boom";
  ]

let test_fail_classes () =
  Alcotest.(check int) "seven classes" 7 (List.length Fail.all_class_names);
  List.iteri
    (fun i f ->
      Alcotest.(check int) (Fail.class_name f ^ " index") i (Fail.class_index f);
      Alcotest.(check string)
        "class_name matches canonical list" (List.nth Fail.all_class_names i)
        (Fail.class_name f))
    all_fails;
  Alcotest.(check string) "payload in to_string" "non-finite (gbw_hz)"
    (Fail.to_string (Fail.Non_finite "gbw_hz"));
  Alcotest.(check string) "other carries reason" "other: boom"
    (Fail.to_string (Fail.Other "boom"));
  List.iter
    (fun f ->
      let expected =
        match f with
        | Fail.Timeout | Fail.Worker_crash | Fail.Cache_corrupt -> true
        | _ -> false
      in
      Alcotest.(check bool)
        (Fail.class_name f ^ " environmental") expected (Fail.environmental f))
    all_fails

let test_attempt_seed () =
  let s1 = Supervise.attempt_seed ~task_seed:42 ~attempt:1 in
  Alcotest.(check int) "deterministic" s1 (Supervise.attempt_seed ~task_seed:42 ~attempt:1);
  Alcotest.(check bool) "nonnegative" true (s1 >= 0);
  Alcotest.(check bool) "attempt changes the seed" true
    (s1 <> Supervise.attempt_seed ~task_seed:42 ~attempt:2);
  Alcotest.(check bool) "task seed changes the seed" true
    (s1 <> Supervise.attempt_seed ~task_seed:43 ~attempt:1)

(* --- NaN guards in the circuit layer --- *)

let test_perf_nan_guards () =
  let good = { Perf.gain_db = 80.0; gbw_hz = 1e6; pm_deg = 60.0; power_w = 1e-4 } in
  let bad = { good with Perf.gbw_hz = Float.nan } in
  Alcotest.(check bool) "finite record passes" true (Perf.is_finite good);
  Alcotest.(check bool) "NaN record fails" false (Perf.is_finite bad);
  Alcotest.(check bool) "NaN fom pinned to -inf" true
    (Perf.fom bad ~cl_f:10e-12 = Float.neg_infinity);
  Alcotest.(check bool) "finite fom stays finite" true
    (Float.is_finite (Perf.fom good ~cl_f:10e-12));
  Alcotest.(check bool) "NaN never satisfies a spec" false (Perf.satisfies bad Spec.s1);
  Alcotest.(check bool) "infinite power never satisfies" false
    (Perf.satisfies { good with Perf.power_w = Float.infinity } Spec.s1)

(* A network the source never reaches: the signal gain at the output is
   exactly zero, which used to turn the input-referred noise into NaN by
   dividing by |H|^2 = 0. *)
let test_noise_zero_gain () =
  let nl =
    {
      Netlist.prims =
        [
          Netlist.Conductance (Netlist.N 0, Netlist.Gnd, 1e-3);
          Netlist.Conductance (Netlist.N 1, Netlist.Gnd, 1e-3);
          Netlist.Conductance (Netlist.N 2, Netlist.Gnd, 1e-3);
          Netlist.Capacitance (Netlist.N 2, Netlist.Gnd, 1e-12);
        ];
      n_unknowns = 3;
      power_w = 0.0;
      gms = [];
    }
  in
  let r = Noise.analyze nl in
  Alcotest.(check bool) "input-referred noise is n/a, not NaN" true
    (r.Noise.input_spot_nv = None);
  Alcotest.(check bool) "output noise stays finite" true
    (Float.is_finite r.Noise.output_rms_v)

let test_transient_no_dc_target () =
  (* A hand-built waveform with no DC operating point: settling metrics are
     absent rather than NaN-poisoned. *)
  let w =
    { Transient.time_s = [| 0.0; 1e-6 |]; vout = [| 0.0; 0.5 |]; final_value = None }
  in
  Alcotest.(check bool) "measure refuses without a target" true (Transient.measure w = None);
  (* A floating capacitor node has no DC solution: the conductance matrix is
     singular, so the simulated waveform itself carries no final value. *)
  let nl =
    {
      Netlist.prims =
        [
          Netlist.Capacitance (Netlist.N 0, Netlist.Gnd, 1e-12);
          Netlist.Conductance (Netlist.N 1, Netlist.Gnd, 1.0);
          Netlist.Conductance (Netlist.N 2, Netlist.Gnd, 1.0);
        ];
      n_unknowns = 3;
      power_w = 0.0;
      gms = [];
    }
  in
  let w = Transient.step_response ~t_end:1e-6 ~points:50 nl in
  Alcotest.(check bool) "singular DC yields no final value" true (w.Transient.final_value = None);
  Alcotest.(check bool) "and therefore no metrics" true (Transient.measure w = None)

let test_wl_gp_rejects_non_finite_targets () =
  let rng = Rng.create ~seed:5 in
  let graphs = Array.init 6 (fun _ -> Circuit_graph.build (Topology.random rng)) in
  let y = Array.init 6 float_of_int in
  y.(3) <- Float.nan;
  let dict = Wl.create_dict () in
  (match Wl_gp.fit ~dict ~graphs ~y () with
  | _ -> Alcotest.fail "fit accepted a NaN target"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "diagnostic names the index" true (contains msg "y.(3)"));
  y.(3) <- Float.infinity;
  match Wl_gp.fit ~dict ~graphs ~y () with
  | _ -> Alcotest.fail "fit accepted an infinite target"
  | exception Invalid_argument _ -> ()

(* --- deadlines --- *)

let small_sizing = { Sizing.default_config with Sizing.n_init = 2; n_iter = 2 }

let test_expired_deadline_classified_as_timeout () =
  let cfg = { small_sizing with Sizing.deadline_s = Some (-1.0) } in
  match
    Evaluator.evaluate_gated ~sizing_config:cfg ~rng:(Rng.create ~seed:3) ~spec:Spec.s1
      (Topology.nmc ())
  with
  | Evaluator.Failed Fail.Timeout -> ()
  | Evaluator.Failed f -> Alcotest.fail ("expected timeout, got " ^ Fail.to_string f)
  | Evaluator.Evaluated _ -> Alcotest.fail "deadline in the past still evaluated"
  | Evaluator.Rejected _ -> Alcotest.fail "static gate rejected the reference topology"

(* --- the retry supervisor --- *)

let nmc_task ~seed =
  Evaluator.task ~spec:Spec.s1 ~sizing_config:small_sizing ~seed (Topology.nmc ())

let no_backoff = { Supervise.max_retries = 2; deadline_s = None; backoff_s = 0.0 }
let success : Evaluator.outcome = Evaluator.Rejected []

let test_environmental_retry_keeps_the_seed () =
  let ledger = Supervise.Ledger.create () in
  let seeds = ref [] in
  let compute (t : Evaluator.task) =
    seeds := t.Evaluator.task_seed :: !seeds;
    if List.length !seeds = 1 then Evaluator.Failed Fail.Timeout else success
  in
  let out = Supervise.run ~ledger ~policy:no_backoff ~key:"k" ~compute (nmc_task ~seed:77) in
  Alcotest.(check bool) "recovered outcome" true (out = success);
  Alcotest.(check (list int)) "same seed on the environmental retry" [ 77; 77 ]
    (List.rev !seeds);
  Alcotest.(check int) "one timeout failure" 1 (Supervise.Ledger.failures_of ledger "timeout");
  Alcotest.(check int) "one timeout retry" 1 (Supervise.Ledger.retries_of ledger "timeout");
  Alcotest.(check int) "one recovery" 1 (Supervise.Ledger.recovered ledger);
  Alcotest.(check int) "no give-up" 0 (Supervise.Ledger.gave_up ledger)

let test_numerical_retry_derives_fresh_seeds () =
  let ledger = Supervise.Ledger.create () in
  let seeds = ref [] in
  let compute (t : Evaluator.task) =
    seeds := t.Evaluator.task_seed :: !seeds;
    Evaluator.Failed Fail.Singular
  in
  let out = Supervise.run ~ledger ~policy:no_backoff ~key:"k" ~compute (nmc_task ~seed:77) in
  Alcotest.(check bool) "still failed after max retries" true
    (out = Evaluator.Failed Fail.Singular);
  Alcotest.(check (list int)) "re-seeded exactly as attempt_seed prescribes"
    [
      77;
      Supervise.attempt_seed ~task_seed:77 ~attempt:1;
      Supervise.attempt_seed ~task_seed:77 ~attempt:2;
    ]
    (List.rev !seeds);
  Alcotest.(check int) "three singular failures" 3
    (Supervise.Ledger.failures_of ledger "singular");
  Alcotest.(check int) "two retries" 2 (Supervise.Ledger.total_retries ledger);
  Alcotest.(check int) "no recovery" 0 (Supervise.Ledger.recovered ledger);
  Alcotest.(check int) "one give-up" 1 (Supervise.Ledger.gave_up ledger)

let test_policy_deadline_fills_only_blanks () =
  let seen = ref [] in
  let compute (t : Evaluator.task) =
    seen := t.Evaluator.task_sizing.Sizing.deadline_s :: !seen;
    success
  in
  let policy = { no_backoff with Supervise.deadline_s = Some 5.0 } in
  ignore (Supervise.run ~policy ~key:"k" ~compute (nmc_task ~seed:1));
  let armed =
    {
      (nmc_task ~seed:1) with
      Evaluator.task_sizing = { small_sizing with Sizing.deadline_s = Some 1.0 };
    }
  in
  ignore (Supervise.run ~policy ~key:"k" ~compute armed);
  Alcotest.(check (list (option (float 0.0)))) "policy default vs task's own"
    [ Some 5.0; Some 1.0 ] (List.rev !seen)

let test_crash_exception_classified () =
  let ledger = Supervise.Ledger.create () in
  let calls = ref 0 in
  let compute (_ : Evaluator.task) =
    incr calls;
    if !calls = 1 then raise Faultin.Injected_crash else success
  in
  let out = Supervise.run ~ledger ~policy:no_backoff ~key:"k" ~compute (nmc_task ~seed:9) in
  Alcotest.(check bool) "recovered" true (out = success);
  Alcotest.(check int) "crash counted as worker-crash" 1
    (Supervise.Ledger.failures_of ledger "worker-crash")

(* --- the chaos harness --- *)

let test_faultin_parse_round_trip () =
  let fi =
    match Faultin.parse "seed=11,delay=0.2,crash=0.1" with
    | Ok fi -> fi
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "seed" 11 (Faultin.seed fi);
  Alcotest.(check (float 0.0)) "delay rate" 0.2 (Faultin.rate fi Faultin.Delay);
  Alcotest.(check (float 0.0)) "crash rate" 0.1 (Faultin.rate fi Faultin.Crash);
  Alcotest.(check (float 0.0)) "unlisted site is silent" 0.0 (Faultin.rate fi Faultin.Nan_perf);
  (match Faultin.parse (Faultin.to_string fi) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check int) "seed survives the round trip" (Faultin.seed fi) (Faultin.seed back);
    List.iter
      (fun site ->
        Alcotest.(check (float 0.0)) (Faultin.site_name site ^ " rate survives")
          (Faultin.rate fi site) (Faultin.rate back site))
      Faultin.all_sites);
  (match Faultin.parse "all=0.05,crash=0.2" with
  | Error e -> Alcotest.fail e
  | Ok fi ->
    Alcotest.(check (float 0.0)) "all sets every site" 0.05 (Faultin.rate fi Faultin.Singular_solve);
    Alcotest.(check (float 0.0)) "later field wins" 0.2 (Faultin.rate fi Faultin.Crash));
  List.iter
    (fun bad ->
      match Faultin.parse bad with
      | Ok _ -> Alcotest.fail ("accepted malformed spec " ^ bad)
      | Error _ -> ())
    [ "bogus=1"; "crash=1.5"; "crash=-0.1"; "seed=abc"; "crash" ]

let test_faultin_decide_deterministic () =
  let make () = Faultin.create ~seed:3 ~rates:[ (Faultin.Crash, 0.3) ] () in
  let a = make () and b = make () in
  let keys = List.init 500 (fun i -> Printf.sprintf "task-%d" i) in
  List.iter
    (fun key ->
      Alcotest.(check bool) "two harnesses agree" (Faultin.decide a Faultin.Crash ~key ~attempt:0)
        (Faultin.decide b Faultin.Crash ~key ~attempt:0))
    keys;
  let count fi = List.length (List.filter (fun key -> Faultin.decide fi Faultin.Crash ~key ~attempt:0) keys) in
  let hits = count a in
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.3 fires roughly 30%% of the time (%d/500)" hits)
    true
    (hits > 100 && hits < 200);
  let other = Faultin.create ~seed:4 ~rates:[ (Faultin.Crash, 0.3) ] () in
  Alcotest.(check bool) "seed changes the decisions" true
    (List.exists
       (fun key ->
         Faultin.decide a Faultin.Crash ~key ~attempt:0
         <> Faultin.decide other Faultin.Crash ~key ~attempt:0)
       keys);
  let zero = Faultin.create ~seed:3 ~rates:[] () in
  Alcotest.(check int) "rate 0 never fires" 0 (count zero);
  let one = Faultin.create ~seed:3 ~rates:[ (Faultin.Crash, 1.0) ] () in
  Alcotest.(check int) "rate 1 always fires" 500 (count one)

(* --- campaign-level chaos --- *)

let test_specs = [ Spec.s1; Spec.s5 ]
let test_methods = [ Methods.Fe_ga; Methods.Vgae_bo; Methods.Into_oa ]
let grid_cells = List.length test_specs * List.length test_methods * 2

let run_campaign ?runtime ?(runs = 2) () =
  Campaign.execute ?runtime ~methods:test_methods ~specs:test_specs
    ~scale:{ Methods.smoke_scale with Methods.runs } ~seed:7 ()

let canonical v = Marshal.to_string v [ Marshal.No_sharing ]

let fingerprint campaign =
  List.map
    (fun (r : Campaign.run) ->
      ( Methods.name r.Campaign.method_id,
        r.Campaign.spec.Spec.name,
        r.Campaign.run_index,
        canonical r.Campaign.trace ))
    campaign

let chaos_of spec =
  match Faultin.parse spec with Ok fi -> fi | Error e -> Alcotest.fail e

let env_chaos_spec = "seed=11,delay=0.15,crash=0.1"
let env_policy = { Supervise.max_retries = 6; deadline_s = None; backoff_s = 0.0 }

let test_chaos_recovers_fault_free_results () =
  let baseline = run_campaign () in
  let fi = chaos_of env_chaos_spec in
  let exec = Exec.create ~jobs:1 ~supervise:env_policy ~faultin:fi () in
  let chaos = run_campaign ~runtime:exec () in
  Alcotest.(check int) "chaos campaign completes the grid" grid_cells (List.length chaos);
  Alcotest.(check bool) "chaos actually injected faults" true (Faultin.total_injected fi > 0);
  let ledger = Exec.ledger exec in
  Alcotest.(check int) "every injected fault was retried away" 0
    (Supervise.Ledger.gave_up ledger);
  Alcotest.(check bool) "tasks recovered" true (Supervise.Ledger.recovered ledger > 0);
  (* Environmental faults cannot occur naturally here (no deadline, no real
     crashes), so the ledger must account for exactly the injected ones. *)
  Alcotest.(check int) "timeout failures == injected delays"
    (Faultin.injected fi Faultin.Delay)
    (Supervise.Ledger.failures_of ledger "timeout");
  Alcotest.(check int) "worker-crash failures == injected crashes"
    (Faultin.injected fi Faultin.Crash)
    (Supervise.Ledger.failures_of ledger "worker-crash");
  Alcotest.(check bool) "chaos run equals the fault-free baseline" true
    (fingerprint chaos = fingerprint baseline);
  let summary = Exec.summary exec in
  let stats = Exec.stats exec in
  Alcotest.(check bool) "summary carries the retry count for CI" true
    (contains summary (Printf.sprintf "retries: %d" stats.Exec.retries));
  Alcotest.(check bool) "summary reports the chaos spec" true
    (contains summary "chaos (")

let test_parallel_chaos_matches_serial_chaos () =
  let run jobs =
    let fi = chaos_of env_chaos_spec in
    let exec = Exec.create ~jobs ~supervise:env_policy ~faultin:fi () in
    let campaign = run_campaign ~runtime:exec () in
    (fingerprint campaign, Supervise.Ledger.failures (Exec.ledger exec),
     List.map (fun s -> (Faultin.site_name s, Faultin.injected fi s)) Faultin.all_sites)
  in
  let serial_fp, serial_ledger, serial_injected = run 1 in
  let par_fp, par_ledger, par_injected = run 4 in
  Alcotest.(check bool) "-j 4 chaos is byte-identical to serial chaos" true
    (serial_fp = par_fp);
  Alcotest.(check (list (pair string int))) "identical ledgers" serial_ledger par_ledger;
  Alcotest.(check (list (pair string int))) "identical injection counts" serial_injected
    par_injected

let test_numerical_chaos_completes_and_ledgers () =
  let fi = chaos_of "seed=5,singular=0.3,nan=0.2" in
  let exec =
    Exec.create ~jobs:1
      ~supervise:{ Supervise.max_retries = 3; deadline_s = None; backoff_s = 0.0 }
      ~faultin:fi ()
  in
  let chaos = run_campaign ~runtime:exec () in
  Alcotest.(check int) "campaign completes under numerical chaos" grid_cells
    (List.length chaos);
  let ledger = Exec.ledger exec in
  Alcotest.(check bool) "singular injections land in the ledger" true
    (Supervise.Ledger.failures_of ledger "singular" >= Faultin.injected fi Faultin.Singular_solve);
  Alcotest.(check bool) "non-finite injections land in the ledger" true
    (Supervise.Ledger.failures_of ledger "non-finite" >= Faultin.injected fi Faultin.Nan_perf);
  Alcotest.(check bool) "some injections fired" true
    (Faultin.injected fi Faultin.Singular_solve > 0 && Faultin.injected fi Faultin.Nan_perf > 0);
  (* The trace-derived report sees the classes the supervisor gave up on. *)
  if Supervise.Ledger.gave_up ledger > 0 then
    Alcotest.(check bool) "failure classes surface in the campaign report" true
      (Campaign.failure_classes chaos <> [])

let test_cache_corruption_chaos_self_heals () =
  let dir = fresh_dir "chaos_cache" in
  let cold_exec = Exec.create ~jobs:1 ~cache:(Cache.create ~dir) () in
  let cold = run_campaign ~runtime:cold_exec ~runs:1 () in
  let fi = chaos_of "seed=3,cache=0.6" in
  let warm_exec = Exec.create ~jobs:1 ~cache:(Cache.create ~dir) ~faultin:fi () in
  let warm = run_campaign ~runtime:warm_exec ~runs:1 () in
  Alcotest.(check bool) "corruption chaos fired" true
    (Faultin.injected fi Faultin.Corrupt_cache > 0);
  Alcotest.(check bool) "warm chaos equals the cold run" true
    (fingerprint cold = fingerprint warm);
  let ledger = Exec.ledger warm_exec in
  Alcotest.(check int) "cache-corrupt failures == injected corruptions"
    (Faultin.injected fi Faultin.Corrupt_cache)
    (Supervise.Ledger.failures_of ledger "cache-corrupt");
  let stats = Exec.stats warm_exec in
  Alcotest.(check bool) "corrupt entries detected by the cache" true
    (stats.Exec.cache_corrupt >= Faultin.injected fi Faultin.Corrupt_cache);
  Alcotest.(check bool) "only the damaged entries recomputed" true
    (Exec.computed warm_exec < Exec.computed cold_exec);
  rm_rf dir

let test_checkpoint_tear_chaos_resumes () =
  let dir = fresh_dir "chaos_tear" in
  let path = Filename.concat dir "campaign.ckpt" in
  let baseline = run_campaign () in
  let fi = chaos_of "seed=9,tear=0.4" in
  let ck1 = Checkpoint.start ~path ~fresh:true in
  let torn_exec = Exec.create ~jobs:1 ~checkpoint:ck1 ~faultin:fi () in
  let torn = run_campaign ~runtime:torn_exec () in
  Checkpoint.close ck1;
  Alcotest.(check bool) "tear chaos fired" true
    (Faultin.injected fi Faultin.Tear_checkpoint > 0);
  Alcotest.(check bool) "the torn run itself is unaffected" true
    (fingerprint torn = fingerprint baseline);
  (* Resume from the damaged journal: the valid prefix restores, the torn
     tail recomputes, and the result is still the baseline. *)
  let ck2 = Checkpoint.start ~path ~fresh:false in
  Alcotest.(check bool) "tear cost journal records" true
    (Checkpoint.restored ck2 < grid_cells);
  let resumed = run_campaign ~runtime:(Exec.create ~jobs:1 ~checkpoint:ck2 ()) () in
  Checkpoint.close ck2;
  Alcotest.(check bool) "resumed campaign equals the baseline" true
    (fingerprint resumed = fingerprint baseline);
  rm_rf dir

let () =
  Alcotest.run "into_robustness"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "classes, indices, payloads" `Quick test_fail_classes;
          Alcotest.test_case "attempt seeds are pure" `Quick test_attempt_seed;
        ] );
      ( "guards",
        [
          Alcotest.test_case "perf NaN guards" `Quick test_perf_nan_guards;
          Alcotest.test_case "zero-gain noise is n/a" `Quick test_noise_zero_gain;
          Alcotest.test_case "transient without a DC target" `Quick test_transient_no_dc_target;
          Alcotest.test_case "WL-GP rejects non-finite targets" `Quick
            test_wl_gp_rejects_non_finite_targets;
          Alcotest.test_case "expired deadline is a timeout" `Quick
            test_expired_deadline_classified_as_timeout;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "environmental retry keeps the seed" `Quick
            test_environmental_retry_keeps_the_seed;
          Alcotest.test_case "numerical retry derives fresh seeds" `Quick
            test_numerical_retry_derives_fresh_seeds;
          Alcotest.test_case "policy deadline fills only blanks" `Quick
            test_policy_deadline_fills_only_blanks;
          Alcotest.test_case "compute exceptions become worker crashes" `Quick
            test_crash_exception_classified;
        ] );
      ( "faultin",
        [
          Alcotest.test_case "spec parse and round trip" `Quick test_faultin_parse_round_trip;
          Alcotest.test_case "decisions are pure and rate-faithful" `Quick
            test_faultin_decide_deterministic;
        ] );
      ( "chaos campaign",
        [
          Alcotest.test_case "recovers fault-free results, exact ledger" `Slow
            test_chaos_recovers_fault_free_results;
          Alcotest.test_case "-j 4 chaos identical to serial chaos" `Slow
            test_parallel_chaos_matches_serial_chaos;
          Alcotest.test_case "numerical chaos completes" `Slow
            test_numerical_chaos_completes_and_ledgers;
          Alcotest.test_case "cache corruption self-heals" `Slow
            test_cache_corruption_chaos_self_heals;
          Alcotest.test_case "checkpoint tears resume clean" `Slow
            test_checkpoint_tear_chaos_resumes;
        ] );
    ]
