(* Tests for the characterization suite: descriptor-form linearization,
   pole/zero extraction, transient integration, noise analysis, Monte-Carlo
   yield and SPICE export. *)

module Topology = Into_circuit.Topology
module Params = Into_circuit.Params
module Netlist = Into_circuit.Netlist
module Mna = Into_circuit.Mna
module Linear_system = Into_circuit.Linear_system
module Poles_zeros = Into_circuit.Poles_zeros
module Transient = Into_circuit.Transient
module Noise = Into_circuit.Noise
module Montecarlo = Into_circuit.Montecarlo
module Spice_export = Into_circuit.Spice_export
module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec
module Rng = Into_util.Rng

let check_close tol = Alcotest.(check (float tol))

let string_contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let default_sized topo =
  let schema = Params.schema topo in
  Params.denormalize schema (Params.default_point schema)

let nmc_netlist () =
  let topo = Topology.nmc () in
  Netlist.build topo ~sizing:(default_sized topo) ~cl_f:10e-12

(* A well-behaved feasible design for the dynamic analyses: sized NMC. *)
let sized_feasible =
  lazy
    (let topo = Topology.nmc () in
     let rng = Rng.create ~seed:5 in
     match Into_core.Sizing.best (Into_core.Sizing.optimize ~rng ~spec:Spec.s1 topo) with
     | Some o -> (topo, o.Into_core.Sizing.sizing)
     | None -> Alcotest.fail "reference sizing failed")

(* --- Linear_system --- *)

let prop_linearization_matches_mna =
  QCheck.Test.make ~name:"descriptor transfer = MNA transfer" ~count:40
    QCheck.(pair (int_range 0 (Topology.space_size - 1)) small_int)
    (fun (idx, seed) ->
      let topo = Topology.of_index idx in
      let schema = Params.schema topo in
      let rng = Rng.create ~seed in
      let sizing = Params.denormalize schema (Params.random_point rng schema) in
      let nl = Netlist.build topo ~sizing ~cl_f:10e-12 in
      let sys = Linear_system.build nl in
      List.for_all
        (fun f ->
          match (Mna.transfer nl ~freq_hz:f, Linear_system.transfer sys ~freq_hz:f) with
          | a, b ->
            Complex.norm (Complex.sub a b) <= 1e-6 *. (Complex.norm a +. 1e-9)
          | exception Mna.Singular -> true)
        [ 1.0; 1e3; 1e6; 1e9 ])

let test_linearization_size () =
  let sys = Linear_system.build (nmc_netlist ()) in
  (* 3 circuit nodes + 3 transconductor states + 1 series-RC node. *)
  Alcotest.(check int) "unknown count" 7 sys.Linear_system.n;
  Alcotest.(check int) "output is vout" 2 sys.Linear_system.output

(* --- Poles_zeros --- *)

let test_single_pole () =
  let nl =
    {
      Netlist.prims =
        [
          Netlist.Conductance (Netlist.N 0, Netlist.Gnd, 1.0);
          Netlist.Conductance (Netlist.N 1, Netlist.Gnd, 1.0);
          Netlist.Vccs { ctrl = Netlist.Vin; out = Netlist.N 2; gm = -1e-3; pole_hz = infinity };
          Netlist.Conductance (Netlist.N 2, Netlist.Gnd, 1e-5);
          Netlist.Capacitance (Netlist.N 2, Netlist.Gnd, 1e-8);
        ];
      n_unknowns = 3;
      power_w = 0.0;
      gms = [];
    }
  in
  let pz = Poles_zeros.analyze nl in
  Alcotest.(check int) "one finite pole" 1 (List.length pz.Poles_zeros.poles_hz);
  (match pz.Poles_zeros.poles_hz with
  | [ p ] ->
    check_close 0.1 "pole at -1/(2 pi R C)" (-1.0 /. (2.0 *. Float.pi *. 1e5 *. 1e-8)) p.Complex.re;
    check_close 1e-6 "real pole" 0.0 p.Complex.im
  | _ -> Alcotest.fail "unexpected pole count");
  Alcotest.(check int) "no finite zeros" 0 (List.length pz.Poles_zeros.zeros_hz);
  Alcotest.(check bool) "stable" true (Poles_zeros.is_stable pz)

let test_dominant_pole_ordering () =
  let pz = Poles_zeros.analyze (nmc_netlist ()) in
  match pz.Poles_zeros.poles_hz with
  | p1 :: p2 :: _ ->
    Alcotest.(check bool) "sorted by magnitude" true (Complex.norm p1 <= Complex.norm p2);
    (match Poles_zeros.dominant_pole_hz pz with
    | Some d -> check_close 1e-9 "dominant matches head" (Complex.norm p1) d
    | None -> Alcotest.fail "dominant pole missing")
  | _ -> Alcotest.fail "expected several poles"

let test_feasible_design_truly_stable () =
  (* The stability gate inside Perf.evaluate means every feasible design is
     open- and closed-loop stable; cross-check on the reference design. *)
  let topo, sizing = Lazy.force sized_feasible in
  let nl = Netlist.build topo ~sizing ~cl_f:10e-12 in
  Alcotest.(check bool) "open-loop stable" true
    (List.for_all (fun p -> p.Complex.re < 0.0) (Poles_zeros.open_loop_poles nl));
  Alcotest.(check bool) "closed-loop stable" true
    (List.for_all (fun p -> p.Complex.re < 0.0) (Poles_zeros.closed_loop_poles nl))

let test_stability_gate () =
  (* Cross-coupled transconductors stronger than their losses form a latch
     with a real RHP pole; the evaluator's stability gate must force a hard
     negative phase margin regardless of what the Bode sweep says. *)
  let cross a b =
    Netlist.Vccs { ctrl = a; out = b; gm = 1e-3; pole_hz = infinity }
  in
  let nl =
    {
      Netlist.prims =
        [
          Netlist.Vccs { ctrl = Netlist.Vin; out = Netlist.N 2; gm = -1e-4; pole_hz = infinity };
          Netlist.Conductance (Netlist.N 0, Netlist.Gnd, 1e-5);
          Netlist.Conductance (Netlist.N 1, Netlist.Gnd, 1.0);
          Netlist.Conductance (Netlist.N 2, Netlist.Gnd, 1e-5);
          Netlist.Capacitance (Netlist.N 0, Netlist.Gnd, 1e-12);
          Netlist.Capacitance (Netlist.N 2, Netlist.Gnd, 1e-12);
          cross (Netlist.N 2) (Netlist.N 0);
          cross (Netlist.N 0) (Netlist.N 2);
        ];
      n_unknowns = 3;
      power_w = 0.0;
      gms = [];
    }
  in
  Alcotest.(check bool) "latch has an RHP pole" true
    (List.exists (fun p -> p.Complex.re > 0.0) (Poles_zeros.open_loop_poles nl));
  check_close 1e-9 "gate forces pm <= -90" (-90.0) (Perf.stability_checked_pm nl 75.0)

(* --- Transient --- *)

let test_step_settles_to_unity () =
  let topo, sizing = Lazy.force sized_feasible in
  let nl = Netlist.build topo ~sizing ~cl_f:10e-12 in
  let w = Transient.step_response nl in
  (match w.Transient.final_value with
  | None -> Alcotest.fail "closed-loop DC target missing"
  | Some fv -> check_close 0.01 "closed-loop DC target is ~1" 1.0 fv);
  match Transient.measure w with
  | None -> Alcotest.fail "settling metrics missing"
  | Some m ->
    Alcotest.(check bool) "settles" true m.Transient.settled;
    Alcotest.(check bool) "bounded overshoot" true (m.Transient.overshoot_pct < 60.0)

let test_open_loop_step_dc_gain () =
  let topo, sizing = Lazy.force sized_feasible in
  let nl = Netlist.build topo ~sizing ~cl_f:10e-12 in
  let w = Transient.step_response ~closed_loop:false ~t_end:1e-3 ~points:100 nl in
  (* Open-loop DC target equals the low-frequency gain. *)
  let gain = Complex.norm (Mna.transfer nl ~freq_hz:1e-3) in
  match w.Transient.final_value with
  | None -> Alcotest.fail "open-loop DC target missing"
  | Some fv ->
    check_close (0.05 *. gain) "open-loop target is the DC gain" gain (Float.abs fv)

let test_transient_validation () =
  match Transient.step_response ~points:1 (nmc_netlist ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single-point waveform accepted"

let test_measure_synthetic () =
  let w =
    {
      Transient.time_s = [| 0.0; 1.0; 2.0; 3.0 |];
      vout = [| 0.0; 1.3; 0.95; 1.0 |];
      final_value = Some 1.0;
    }
  in
  match Transient.measure w with
  | None -> Alcotest.fail "metrics missing for a waveform with a DC target"
  | Some m ->
    check_close 1e-9 "overshoot 30%" 30.0 m.Transient.overshoot_pct;
    Alcotest.(check bool) "settles at the third sample" true
      (m.Transient.settling_time_s = Some 3.0)

(* --- Noise --- *)

let test_noise_positive_and_scaling () =
  let topo, sizing = Lazy.force sized_feasible in
  let nl = Netlist.build topo ~sizing ~cl_f:10e-12 in
  let r = Noise.analyze nl in
  Alcotest.(check bool) "positive output noise" true (r.Noise.output_rms_v > 0.0);
  Alcotest.(check bool) "positive input-referred" true
    (match r.Noise.input_spot_nv with Some v -> v > 0.0 | None -> false);
  Alcotest.(check bool) "counts every element" true (r.Noise.n_sources >= 7)

let test_noise_band_validation () =
  match Noise.analyze ~f_lo:10.0 ~f_hi:1.0 (nmc_netlist ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted band accepted"

let test_noise_grows_with_band () =
  let nl = nmc_netlist () in
  let narrow = Noise.analyze ~f_lo:1.0 ~f_hi:1e4 nl in
  let wide = Noise.analyze ~f_lo:1.0 ~f_hi:1e6 nl in
  Alcotest.(check bool) "wider band, more integrated noise" true
    (wide.Noise.output_rms_v >= narrow.Noise.output_rms_v)

(* --- Montecarlo --- *)

let test_montecarlo_yield () =
  let topo, sizing = Lazy.force sized_feasible in
  let rng = Rng.create ~seed:9 in
  let r = Montecarlo.run ~trials:40 ~sigma:0.02 ~rng ~spec:Spec.s1 topo ~sizing in
  Alcotest.(check int) "trials recorded" 40 r.Montecarlo.trials;
  Alcotest.(check bool) "yield consistent" true
    (Float.abs (r.Montecarlo.yield -. (float_of_int r.Montecarlo.passes /. 40.0)) < 1e-9);
  Alcotest.(check bool) "zero spread should pass often" true (r.Montecarlo.passes > 0)

let test_montecarlo_zero_sigma () =
  let topo, sizing = Lazy.force sized_feasible in
  let rng = Rng.create ~seed:10 in
  let r = Montecarlo.run ~trials:5 ~sigma:1e-12 ~rng ~spec:Spec.s1 topo ~sizing in
  Alcotest.(check int) "nominal design passes every trial" 5 r.Montecarlo.passes

let test_montecarlo_validation () =
  let topo, sizing = Lazy.force sized_feasible in
  match Montecarlo.run ~trials:0 ~rng:(Rng.create ~seed:1) ~spec:Spec.s1 topo ~sizing with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero trials accepted"

(* --- Spice_export --- *)

let test_spice_deck_structure () =
  let topo = Topology.nmc () in
  let deck = Spice_export.behavioral topo ~sizing:(default_sized topo) ~cl_f:10e-12 in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("deck contains " ^ fragment) true (string_contains deck fragment))
    [ "vin vin 0 dc 0 ac 1"; ".ac dec"; ".end"; "g1 "; "r_s1"; "c_s1" ];
  (* Three transconductors -> g1..g3. *)
  Alcotest.(check bool) "third VCCS present" true (string_contains deck "g3 ")

let test_spice_deck_element_count () =
  let topo = Topology.nmc () in
  let nl = Netlist.build topo ~sizing:(default_sized topo) ~cl_f:10e-12 in
  let deck = Spice_export.behavioral topo ~sizing:(default_sized topo) ~cl_f:10e-12 in
  let lines = String.split_on_char '\n' deck in
  let element_lines =
    List.filter
      (fun l ->
        String.length l > 0
        && (match l.[0] with 'r' | 'c' | 'g' -> true | _ -> false))
      lines
  in
  (* Each prim maps to one element except series-RC, which expands to two. *)
  let series =
    List.length
      (List.filter (function Netlist.Series_rc _ -> true | _ -> false) nl.Netlist.prims)
  in
  Alcotest.(check int) "element count"
    (List.length nl.Netlist.prims + series)
    (List.length element_lines)

let () =
  Alcotest.run "into_analysis"
    [
      ( "linear_system",
        [
          Alcotest.test_case "unknown count" `Quick test_linearization_size;
          QCheck_alcotest.to_alcotest prop_linearization_matches_mna;
        ] );
      ( "poles_zeros",
        [
          Alcotest.test_case "single pole" `Quick test_single_pole;
          Alcotest.test_case "dominant ordering" `Quick test_dominant_pole_ordering;
          Alcotest.test_case "feasible implies stable" `Quick test_feasible_design_truly_stable;
          Alcotest.test_case "stability gate on a latch" `Quick test_stability_gate;
        ] );
      ( "transient",
        [
          Alcotest.test_case "closed-loop step settles" `Quick test_step_settles_to_unity;
          Alcotest.test_case "open-loop DC target" `Quick test_open_loop_step_dc_gain;
          Alcotest.test_case "validation" `Quick test_transient_validation;
          Alcotest.test_case "synthetic metrics" `Quick test_measure_synthetic;
        ] );
      ( "noise",
        [
          Alcotest.test_case "positive and counted" `Quick test_noise_positive_and_scaling;
          Alcotest.test_case "band validation" `Quick test_noise_band_validation;
          Alcotest.test_case "band monotonicity" `Quick test_noise_grows_with_band;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "yield bookkeeping" `Quick test_montecarlo_yield;
          Alcotest.test_case "zero sigma" `Quick test_montecarlo_zero_sigma;
          Alcotest.test_case "validation" `Quick test_montecarlo_validation;
        ] );
      ( "spice_export",
        [
          Alcotest.test_case "deck structure" `Quick test_spice_deck_structure;
          Alcotest.test_case "element count" `Quick test_spice_deck_element_count;
        ] );
    ]
