(* Tests for Into_experiments: the method interface, curve bookkeeping, the
   campaign aggregations, refinement seeds and report rendering. *)

module Methods = Into_experiments.Methods
module Curves = Into_experiments.Curves
module Campaign = Into_experiments.Campaign
module Seeds = Into_experiments.Seeds
module Report = Into_experiments.Report
module Tlevel_exp = Into_experiments.Tlevel_exp
module Topo_bo = Into_core.Topo_bo
module Evaluator = Into_core.Evaluator
module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Rng = Into_util.Rng

let tiny_scale =
  { Methods.runs = 1; n_init = 3; iterations = 3; pool = 20; sizing_init = 4; sizing_iters = 4 }

let string_contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- Methods --- *)

let test_method_names () =
  Alcotest.(check int) "five methods" 5 (List.length Methods.all);
  Alcotest.(check (list string)) "table II row order"
    [ "FE-GA"; "VGAE-BO"; "INTO-OA-r"; "INTO-OA-m"; "INTO-OA" ]
    (List.map Methods.name Methods.all)

let test_each_method_runs () =
  List.iter
    (fun m ->
      let rng = Rng.create ~seed:(Hashtbl.hash (Methods.name m)) in
      let trace = Methods.run m ~scale:tiny_scale ~rng ~spec:Spec.s1 in
      Alcotest.(check bool)
        (Methods.name m ^ " produced steps")
        true
        (List.length trace.Methods.steps > 0);
      Alcotest.(check bool)
        (Methods.name m ^ " counted sims")
        true (trace.Methods.total_sims > 0))
    Methods.all

let test_scale_of_env () =
  (* Without INTO_OA_FULL the reduced default applies. *)
  Unix.putenv "INTO_OA_FULL" "0";
  Unix.putenv "INTO_OA_RUNS" "7";
  let s = Methods.scale_of_env () in
  Alcotest.(check int) "runs from env" 7 s.Methods.runs;
  Unix.putenv "INTO_OA_FULL" "1";
  let s = Methods.scale_of_env () in
  Alcotest.(check int) "paper scale runs" 10 s.Methods.runs;
  Alcotest.(check int) "paper scale iters" 50 s.Methods.iterations;
  Unix.putenv "INTO_OA_FULL" "0";
  Unix.putenv "INTO_OA_RUNS" ""

(* --- Curves --- *)

let synthetic_steps =
  (* (cumulative_sims, best_fom_so_far) *)
  List.map
    (fun (sims, best) ->
      { Topo_bo.iteration = 0; evaluation = None; rejection = []; failure = None; cumulative_sims = sims; best_fom_so_far = best })
    [ (40, None); (80, Some 10.0); (120, Some 10.0); (160, Some 25.0) ]

let test_best_fom_at () =
  Alcotest.(check (option (float 1e-9))) "before any feasible" None
    (Curves.best_fom_at synthetic_steps ~sims:40);
  Alcotest.(check (option (float 1e-9))) "mid" (Some 10.0)
    (Curves.best_fom_at synthetic_steps ~sims:100);
  Alcotest.(check (option (float 1e-9))) "end" (Some 25.0)
    (Curves.best_fom_at synthetic_steps ~sims:1000)

let test_sims_to_reach () =
  Alcotest.(check (option int)) "first feasible" (Some 80)
    (Curves.sims_to_reach synthetic_steps ~target:5.0);
  Alcotest.(check (option int)) "later target" (Some 160)
    (Curves.sims_to_reach synthetic_steps ~target:20.0);
  Alcotest.(check (option int)) "unreached" None
    (Curves.sims_to_reach synthetic_steps ~target:100.0)

let test_sample_grid () =
  Alcotest.(check (list int)) "grid" [ 40; 80; 120 ] (Curves.sample_grid ~step:40 ~max_sims:130);
  match Curves.sample_grid ~step:0 ~max_sims:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero step accepted"

let test_mean_curve () =
  let run2 =
    List.map
      (fun (sims, best) ->
        { Topo_bo.iteration = 0; evaluation = None; rejection = []; failure = None; cumulative_sims = sims; best_fom_so_far = best })
      [ (40, Some 20.0); (80, Some 20.0) ]
  in
  let curve = Curves.mean_curve [ synthetic_steps; run2 ] ~grid:[ 40; 80 ] in
  (match curve with
  | [ (40, m1, n1); (80, m2, n2) ] ->
    Alcotest.(check int) "one feasible run at 40" 1 n1;
    Alcotest.(check (float 1e-9)) "mean at 40" 20.0 m1;
    Alcotest.(check int) "two feasible at 80" 2 n2;
    Alcotest.(check (float 1e-9)) "mean at 80" 15.0 m2
  | _ -> Alcotest.fail "unexpected grid")

(* --- Campaign --- *)

let campaign =
  lazy
    (Campaign.execute ~methods:[ Methods.Into_oa_r; Methods.Into_oa ]
       ~specs:[ Spec.s1 ] ~scale:{ tiny_scale with Methods.runs = 2 } ~seed:5 ())

let test_campaign_shape () =
  let c = Lazy.force campaign in
  Alcotest.(check int) "2 methods x 1 spec x 2 runs" 4 (List.length c);
  Alcotest.(check int) "runs_of filters" 2
    (List.length (Campaign.runs_of c Methods.Into_oa Spec.s1))

let test_campaign_determinism () =
  let c1 =
    Campaign.execute ~methods:[ Methods.Into_oa ] ~specs:[ Spec.s1 ]
      ~scale:tiny_scale ~seed:9 ()
  in
  let c2 =
    Campaign.execute ~methods:[ Methods.Into_oa ] ~specs:[ Spec.s1 ]
      ~scale:tiny_scale ~seed:9 ()
  in
  let sims c = List.map (fun (r : Campaign.run) -> r.Campaign.trace.Methods.total_sims) c in
  Alcotest.(check (list int)) "same seed, same budget" (sims c1) (sims c2);
  let foms c =
    List.map
      (fun (r : Campaign.run) ->
        Option.map (fun (e : Evaluator.evaluation) -> e.Evaluator.fom) r.Campaign.trace.Methods.best)
      c
  in
  Alcotest.(check bool) "same seed, same results" true (foms c1 = foms c2)

let test_table2_rows () =
  let c = Lazy.force campaign in
  let rows = Campaign.table2 c Spec.s1 in
  Alcotest.(check int) "row per method present" 2 (List.length rows);
  List.iter
    (fun (r : Campaign.row) ->
      let succ, total = r.Campaign.success_rate in
      Alcotest.(check int) "out of two runs" 2 total;
      Alcotest.(check bool) "sane" true (succ >= 0 && succ <= 2))
    rows

let test_reference_fom_is_min () =
  let c = Lazy.force campaign in
  match Campaign.reference_fom c Spec.s1 with
  | None -> () (* no successful run in the tiny campaign *)
  | Some reference ->
    let means =
      List.filter_map
        (fun m ->
          let foms =
            List.filter_map
              (fun (r : Campaign.run) ->
                Option.map
                  (fun (e : Evaluator.evaluation) -> e.Evaluator.fom)
                  r.Campaign.trace.Methods.best)
              (Campaign.runs_of c m Spec.s1)
          in
          if foms = [] then None else Some (Into_util.Stats.mean foms))
        [ Methods.Into_oa_r; Methods.Into_oa ]
    in
    List.iter
      (fun m -> Alcotest.(check bool) "reference <= every method mean" true (reference <= m +. 1e-9))
      means

(* --- Seeds --- *)

let test_seeds_valid () =
  (* make already validates; reaching here means the encodings are legal. *)
  Alcotest.(check bool) "c1 uses a parallel -gm/C between v1 and vout" true
    (Subcircuit.equal
       (Topology.get Seeds.c1 Topology.V1_vout)
       (Subcircuit.Gm_with
          (Subcircuit.Minus, Subcircuit.Forward, Subcircuit.Cap, Subcircuit.Parallel)));
  Alcotest.(check bool) "c2 uses a Miller capacitor" true
    (Subcircuit.equal (Topology.get Seeds.c2 Topology.V1_vout)
       (Subcircuit.Passive Subcircuit.Single_c))

let test_expected_moves_legal () =
  let check_move (slot, sub) =
    Alcotest.(check bool) "replacement type admissible" true
      (Array.exists (Subcircuit.equal sub) (Topology.allowed slot))
  in
  check_move Seeds.c1_expected_move;
  check_move Seeds.c2_expected_move

(* --- Report --- *)

let test_report_table1 () =
  let s = Report.table1 () in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (string_contains s fragment))
    [ "S-1"; "S-5"; "Gain(dB)"; "10000" ]

let test_report_table2_renders () =
  let c = Lazy.force campaign in
  let s = Report.table2 c in
  Alcotest.(check bool) "mentions INTO-OA" true (string_contains s "INTO-OA");
  Alcotest.(check bool) "mentions success rate" true (string_contains s "Suc. Rate")

let test_report_fig5_renders () =
  let c = Lazy.force campaign in
  let s = Report.fig5 c Spec.s1 in
  Alcotest.(check bool) "has the sims column" true (string_contains s "# Sim.")

let test_perf_cells () =
  let p = { Perf.gain_db = 90.1; gbw_hz = 2e6; pm_deg = 61.5; power_w = 120e-6 } in
  Alcotest.(check (list string)) "formatted like the paper"
    [ "90.10"; "2.00"; "61.50"; "120.00"; "166.67" ]
    (Report.perf_cells p ~cl_f:10e-12)

(* --- Tlevel_exp --- *)

let test_tlevel_evaluate_design () =
  let t = Topology.nmc () in
  let schema = Into_circuit.Params.schema t in
  let sizing = Into_circuit.Params.denormalize schema (Into_circuit.Params.default_point schema) in
  match Perf.evaluate t ~sizing ~cl_f:Spec.s1.Spec.cl_f with
  | None -> Alcotest.fail "behavioral evaluation failed"
  | Some behavioral ->
    let row =
      Tlevel_exp.evaluate_design ~spec:Spec.s1 ~label:"test" ~topology:t ~sizing ~behavioral
    in
    Alcotest.(check string) "spec name" "S-1" row.Tlevel_exp.spec_name;
    (match row.Tlevel_exp.transistor_fom with
    | Some tf ->
      Alcotest.(check bool) "fom drops at transistor level" true
        (tf < row.Tlevel_exp.behavioral_fom)
    | None -> Alcotest.fail "transistor evaluation failed")


(* --- Csv --- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Into_experiments.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Into_experiments.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Into_experiments.Csv.escape "a\"b")

let test_csv_of_rows () =
  let s = Into_experiments.Csv.of_rows ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  Alcotest.(check string) "layout" "x,y\n1,2\n3,4\n" s

let test_csv_campaign () =
  let c = Lazy.force campaign in
  let runs_csv = Into_experiments.Csv.campaign_runs c in
  let lines = String.split_on_char '\n' runs_csv in
  (* header + one line per run + trailing newline *)
  Alcotest.(check int) "rows" (List.length c + 2) (List.length lines);
  Alcotest.(check bool) "header" true
    (String.length (List.hd lines) > 0 && String.sub (List.hd lines) 0 4 = "spec");
  let t2 = Into_experiments.Csv.campaign_table2 c in
  Alcotest.(check bool) "table2 header" true
    (String.sub t2 0 11 = "spec,method")

(* --- Ablation --- *)

let test_ablation_variants () =
  let scale = tiny_scale in
  let vs = Into_experiments.Ablation.variants scale in
  Alcotest.(check int) "six variants" 6 (List.length vs);
  let names = List.map fst vs in
  Alcotest.(check bool) "baseline first" true
    (match names with n :: _ -> n = "INTO-OA (baseline)" | [] -> false);
  (* The h=0 variant really restricts the candidate set. *)
  let _, h0 = List.nth vs 1 in
  Alcotest.(check (list int)) "h restricted" [ 0 ] h0.Into_core.Topo_bo.h_candidates

let test_ablation_run_and_report () =
  let rows =
    Into_experiments.Ablation.run ~spec:Spec.s1 ~scale:{ tiny_scale with Methods.runs = 1 }
      ~seed:3 ()
  in
  Alcotest.(check int) "row per variant" 6 (List.length rows);
  List.iter
    (fun (r : Into_experiments.Ablation.row) ->
      Alcotest.(check int) "runs recorded" 1 r.Into_experiments.Ablation.runs)
    rows;
  let s = Into_experiments.Ablation.report Spec.s1 rows in
  Alcotest.(check bool) "report mentions the baseline" true (string_contains s "baseline")


(* --- Surrogate_exp --- *)

let test_surrogate_exp_shape () =
  let cfg = { Into_core.Sizing.default_config with Into_core.Sizing.n_init = 3; n_iter = 3 } in
  let r =
    Into_experiments.Surrogate_exp.run ~n_train:6 ~n_test:3 ~spec:Spec.s1
      ~sizing_config:cfg ~seed:4 ()
  in
  Alcotest.(check int) "train size" 6 r.Into_experiments.Surrogate_exp.n_train;
  Alcotest.(check int) "test size" 3 r.Into_experiments.Surrogate_exp.n_test;
  Alcotest.(check int) "five metrics scored" 5
    (List.length r.Into_experiments.Surrogate_exp.scores);
  List.iter
    (fun (s : Into_experiments.Surrogate_exp.model_score) ->
      Alcotest.(check bool) "scores bounded" true
        (Float.abs s.Into_experiments.Surrogate_exp.wl_spearman <= 1.0 +. 1e-9
        && Float.abs s.Into_experiments.Surrogate_exp.embedding_spearman <= 1.0 +. 1e-9))
    r.Into_experiments.Surrogate_exp.scores;
  let txt = Into_experiments.Surrogate_exp.render Spec.s1 r in
  Alcotest.(check bool) "render mentions WL-GP" true (string_contains txt "WL-GP")

let () =
  Alcotest.run "into_experiments"
    [
      ( "methods",
        [
          Alcotest.test_case "names" `Quick test_method_names;
          Alcotest.test_case "every method runs" `Slow test_each_method_runs;
          Alcotest.test_case "scale from environment" `Quick test_scale_of_env;
        ] );
      ( "curves",
        [
          Alcotest.test_case "best fom at budget" `Quick test_best_fom_at;
          Alcotest.test_case "sims to reach target" `Quick test_sims_to_reach;
          Alcotest.test_case "sample grid" `Quick test_sample_grid;
          Alcotest.test_case "mean curve" `Quick test_mean_curve;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "shape" `Slow test_campaign_shape;
          Alcotest.test_case "deterministic seeding" `Slow test_campaign_determinism;
          Alcotest.test_case "table2 rows" `Slow test_table2_rows;
          Alcotest.test_case "reference fom is the worst mean" `Slow test_reference_fom_is_min;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "valid encodings" `Quick test_seeds_valid;
          Alcotest.test_case "expected moves legal" `Quick test_expected_moves_legal;
        ] );
      ( "report",
        [
          Alcotest.test_case "table I" `Quick test_report_table1;
          Alcotest.test_case "table II renders" `Slow test_report_table2_renders;
          Alcotest.test_case "fig 5 renders" `Slow test_report_fig5_renders;
          Alcotest.test_case "perf cells" `Quick test_perf_cells;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "of_rows" `Quick test_csv_of_rows;
          Alcotest.test_case "campaign export" `Slow test_csv_campaign;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "variants" `Quick test_ablation_variants;
          Alcotest.test_case "run and report" `Slow test_ablation_run_and_report;
        ] );
      ( "surrogate_exp",
        [ Alcotest.test_case "shape and bounds" `Slow test_surrogate_exp_shape ] );
      ( "tlevel_exp",
        [ Alcotest.test_case "evaluate design" `Quick test_tlevel_evaluate_design ] );
    ]
