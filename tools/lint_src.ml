(* Source-level lint: scan OCaml sources for banned patterns and report
   file:line with a diagnostic code.  Runs as part of `dune runtest` (see
   ./dune), so the tree stays clean under these rules forever.

   Usage: lint_src [--lib DIR] [DIR | --src DIR] ...

   Directories passed with --lib are additionally held to the library-only
   rules (no stdout printing, no untyped aborts).  Comments, string
   literals and character literals are stripped before matching, so a
   banned token inside documentation or a message never fires.

   Codes:
     L001  Array.unsafe_get / Array.unsafe_set   unchecked access
     L002  Obj.magic                             type-system escape
     L003  List.hd / List.tl                     partial function
     L004  Option.get                            partial function
     L005  == / != physical equality             float-unsafe comparison
     L006  Printf.printf in lib/                 library writes to stdout
     L007  failwith in lib/                      untyped abort *)

type finding = { file : string; line : int; code : string; message : string }

(* --- OCaml-aware stripping ------------------------------------------- *)

(* Replace comments (nested), string literals and character literals with
   spaces, preserving newlines so line numbers survive. *)
let strip src =
  let n = String.length src in
  let buf = Buffer.create n in
  let blank c = Buffer.add_char buf (if c = '\n' then '\n' else ' ') in
  let blank_range i j =
    for k = i to j - 1 do
      if k < n then blank src.[k]
    done
  in
  let i = ref 0 in
  let comment_depth = ref 0 in
  let in_string = ref false in
  while !i < n do
    let c = src.[!i] in
    if !in_string then begin
      if c = '\\' && !i + 1 < n then begin
        blank_range !i (!i + 2);
        i := !i + 2
      end
      else begin
        if c = '"' then in_string := false;
        blank c;
        incr i
      end
    end
    else if !comment_depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        incr comment_depth;
        blank_range !i (!i + 2);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr comment_depth;
        blank_range !i (!i + 2);
        i := !i + 2
      end
      else begin
        blank c;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      comment_depth := 1;
      blank_range !i (!i + 2);
      i := !i + 2
    end
    else if c = '"' then begin
      in_string := true;
      blank c;
      incr i
    end
    else if c = '\'' then begin
      (* Character literal or type variable.  'x' and '\..' are literals;
         anything else (e.g. 'a in a type) passes through as a blank. *)
      if !i + 2 < n && src.[!i + 1] <> '\\' && src.[!i + 2] = '\'' then begin
        blank_range !i (!i + 3);
        i := !i + 3
      end
      else if !i + 1 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do
          incr j
        done;
        blank_range !i (!j + 1);
        i := !j + 1
      end
      else begin
        blank c;
        incr i
      end
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(* --- pattern matching ------------------------------------------------- *)

let is_ident c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

type rule = { code : string; pattern : string; message : string; lib_only : bool }

let rules =
  [
    { code = "L001"; pattern = "Array.unsafe_get"; message = "unchecked array access"; lib_only = false };
    { code = "L001"; pattern = "Array.unsafe_set"; message = "unchecked array access"; lib_only = false };
    { code = "L002"; pattern = "Obj.magic"; message = "type-system escape"; lib_only = false };
    { code = "L003"; pattern = "List.hd"; message = "partial function (match on the list instead)"; lib_only = false };
    { code = "L003"; pattern = "List.tl"; message = "partial function (match on the list instead)"; lib_only = false };
    { code = "L004"; pattern = "Option.get"; message = "partial function (match on the option instead)"; lib_only = false };
    { code = "L006"; pattern = "Printf.printf"; message = "library code must not write to stdout"; lib_only = true };
    { code = "L007"; pattern = "failwith"; message = "untyped abort (return a result or raise a typed exception)"; lib_only = true };
  ]

let find_pattern line (r : rule) =
  let pl = String.length r.pattern and ll = String.length line in
  let rec go from acc =
    if from + pl > ll then acc
    else
      match String.index_from_opt line from r.pattern.[0] with
      | None -> acc
      | Some at when at + pl > ll -> acc
      | Some at ->
        let matches =
          String.sub line at pl = r.pattern
          && (at = 0 || not (is_ident line.[at - 1]))
          && (at + pl >= ll || not (is_ident line.[at + pl]))
        in
        go (at + 1) (acc || matches)
  in
  go 0 false

(* Physical equality: == and != outside longer operators (===, !==, ...). *)
let has_physical_equality line =
  let ll = String.length line in
  let op_char c = String.contains "!$%&*+-./:<=>?@^|~" c in
  let rec go i =
    if i + 1 >= ll then false
    else if
      (line.[i] = '=' || line.[i] = '!')
      && line.[i + 1] = '='
      && (i + 2 >= ll || not (op_char line.[i + 2]))
      && (i = 0 || not (op_char line.[i - 1]))
    then true
    else go (i + 1)
  in
  go 0

let scan_file ~lib_rules file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let stripped = strip src in
  let findings = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      List.iter
        (fun r ->
          if ((not r.lib_only) || lib_rules) && find_pattern line r then
            findings :=
              { file; line = lineno; code = r.code;
                message = Printf.sprintf "%s (%s)" r.message r.pattern }
              :: !findings)
        rules;
      if has_physical_equality line then
        findings :=
          { file; line = lineno; code = "L005";
            message = "physical equality ==/!= (unsafe on floats; use = or Float.equal)" }
          :: !findings)
    (String.split_on_char '\n' stripped);
  List.rev !findings

(* --- directory walk --------------------------------------------------- *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec walk dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then acc
        else
          let path = Filename.concat dir entry in
          if Sys.is_directory path then acc @ walk path
          else if is_source entry then acc @ [ path ]
          else acc)
      [] entries
  | exception Sys_error _ -> []

let () =
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--lib" :: dir :: rest ->
      targets := (dir, true) :: !targets;
      parse rest
    | "--src" :: dir :: rest | dir :: rest ->
      targets := (dir, false) :: !targets;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let findings =
    List.concat_map
      (fun (dir, lib_rules) ->
        List.concat_map (fun f -> scan_file ~lib_rules f) (walk dir))
      (List.rev !targets)
  in
  List.iter
    (fun f -> Printf.printf "%s:%d: [%s] %s\n" f.file f.line f.code f.message)
    findings;
  if findings = [] then print_endline "lint_src: clean"
  else begin
    Printf.printf "lint_src: %d findings\n" (List.length findings);
    exit 1
  end
