(* The benchmark harness: Bechamel micro-benchmarks of every computational
   kernel, followed by the regeneration of each table and figure of the
   paper's evaluation (see DESIGN.md, per-experiment index E1-E8).

   The campaign scale is controlled by environment variables:
     INTO_OA_FULL=1        paper scale (10 runs, 50 iterations, pool 200)
     INTO_OA_RUNS=n        number of repetitions (default 3)
     INTO_OA_ITERS=n       BO iterations (default 25)
     INTO_OA_POOL=n        candidate pool (default 100)
   Run with: dune exec bench/main.exe -- [-j N] [--cache-dir DIR] [--no-cache] [--resume] *)

open Bechamel

module Spec = Into_circuit.Spec
module Topology = Into_circuit.Topology
module Params = Into_circuit.Params
module Netlist = Into_circuit.Netlist
module Methods = Into_experiments.Methods
module Campaign = Into_experiments.Campaign
module Report = Into_experiments.Report

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --- runtime engine flags --- *)

let jobs = ref 1
let cache_dir = ref ".into-oa-cache"
let no_cache = ref false
let resume = ref false
let chaos = ref ""

let parse_args () =
  let spec =
    [
      ("-j", Arg.Set_int jobs, "N worker domains (default 1 = serial; 0 = one per core)");
      ("--jobs", Arg.Set_int jobs, "N same as -j");
      ( "--cache-dir",
        Arg.Set_string cache_dir,
        "DIR evaluation cache / checkpoint directory (default .into-oa-cache)" );
      ("--no-cache", Arg.Set no_cache, " disable the persistent evaluation cache");
      ("--resume", Arg.Set resume, " resume the campaign from its checkpoint journal");
      ( "--chaos",
        Arg.Set_string chaos,
        "SPEC arm deterministic fault injection, e.g. seed=7,delay=0.2,crash=0.1" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "dune exec bench/main.exe -- [options]"

let make_runtime () =
  let cache =
    if !no_cache then None else Some (Into_runtime.Cache.create ~dir:!cache_dir)
  in
  let checkpoint =
    Into_runtime.Checkpoint.start
      ~path:(Filename.concat !cache_dir "bench.ckpt")
      ~fresh:(not !resume)
  in
  let faultin =
    if !chaos = "" then None
    else
      match Into_runtime.Faultin.parse !chaos with
      | Ok fi -> Some fi
      | Error msg ->
        Printf.eprintf "bad --chaos spec: %s\n" msg;
        exit 2
  in
  Into_runtime.Exec.create ~jobs:!jobs ?cache ~checkpoint ?faultin ()

(* --- E8: micro-benchmarks --- *)

let nmc_netlist =
  let topo = Topology.nmc () in
  let schema = Params.schema topo in
  Netlist.build topo ~sizing:(Params.denormalize schema (Params.default_point schema))
    ~cl_f:10e-12

let full_topology =
  Topology.make
    ~vin_v2:
      (Into_circuit.Subcircuit.Gm_with
         ( Into_circuit.Subcircuit.Minus,
           Into_circuit.Subcircuit.Forward,
           Into_circuit.Subcircuit.Res,
           Into_circuit.Subcircuit.Series ))
    ~vin_vout:(Into_circuit.Subcircuit.Gm (Into_circuit.Subcircuit.Plus, Into_circuit.Subcircuit.Forward))
    ~v1_vout:(Into_circuit.Subcircuit.Passive (Into_circuit.Subcircuit.Rc Into_circuit.Subcircuit.Series))
    ~v1_gnd:(Into_circuit.Subcircuit.Passive Into_circuit.Subcircuit.Single_c)
    ~v2_gnd:(Into_circuit.Subcircuit.Passive Into_circuit.Subcircuit.Single_r)

let bench_tests =
  let rng = Into_util.Rng.create ~seed:1 in
  let dict = Into_graph.Wl.create_dict () in
  let graphs =
    Array.init 30 (fun _ -> Into_graph.Circuit_graph.build (Topology.random rng))
  in
  let feats = Array.map (fun g -> Into_graph.Wl.extract dict ~h:2 g) graphs in
  let y = Array.init 30 (fun i -> sin (float_of_int i)) in
  let gram = Into_graph.Wl_kernel.gram feats in
  let full_graph = Into_graph.Circuit_graph.build full_topology in
  let sizing_rng = Into_util.Rng.create ~seed:2 in
  [
    Test.make ~name:"topology index round trip"
      (Staged.stage (fun () -> Topology.to_index (Topology.of_index 12345)));
    Test.make ~name:"circuit graph build"
      (Staged.stage (fun () -> Into_graph.Circuit_graph.build full_topology));
    Test.make ~name:"wl features (h=2, 13 nodes)"
      (Staged.stage (fun () -> Into_graph.Wl.extract dict ~h:2 full_graph));
    Test.make ~name:"wl gram matrix (30 graphs)"
      (Staged.stage (fun () -> Into_graph.Wl_kernel.gram feats));
    Test.make ~name:"gp fit (n=30)"
      (Staged.stage (fun () -> Into_gp.Gp.fit ~gram ~y ~signal:1.0 ~noise:1e-3));
    Test.make ~name:"mna solve (1 MHz)"
      (Staged.stage (fun () -> Into_circuit.Mna.transfer nmc_netlist ~freq_hz:1e6));
    Test.make ~name:"full ac analysis"
      (Staged.stage (fun () -> Into_circuit.Ac.analyze nmc_netlist));
    Test.make ~name:"candidate pool (mixed, 200)"
      (Staged.stage (fun () ->
           Into_core.Candidates.generate ~rng:sizing_rng
             ~strategy:Into_core.Candidates.Mixed ~pool:200 ~best:[ Topology.nmc () ]
             ~visited:(fun _ -> false)));
  ]

let run_microbenchmarks () =
  section "E8: micro-benchmarks (Bechamel, monotonic clock)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | Some _ | None -> Float.nan
          in
          Printf.printf "  %-32s %12.1f ns/run\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    bench_tests

(* --- E1-E4: specification sets, optimization campaign --- *)

let run_campaign runtime scale =
  section "E1: Table I";
  print_endline (Report.table1 ());
  section
    (Printf.sprintf
       "E2-E4: optimization campaign (%d runs, %d iterations, pool %d; set INTO_OA_FULL=1 for paper scale)"
       scale.Methods.runs scale.Methods.iterations scale.Methods.pool);
  let campaign =
    Campaign.execute
      ~progress:
        (Into_runtime.Progress.of_string_renderer (fun s -> Printf.eprintf "  [%s]\n%!" s))
      ~runtime ~scale ~seed:2025 ()
  in
  List.iter
    (fun spec ->
      print_newline ();
      print_endline (Report.fig5 campaign spec))
    Spec.all;
  (* The S-1 panel of Fig. 5 as an actual (text) plot. *)
  print_newline ();
  print_endline "Fig. 5 (S-1 panel, plotted):";
  let series =
    List.map
      (fun (name, pts) ->
        (name, List.filter_map (fun (s, f, n) -> if n > 0 then Some (float_of_int s, f) else None) pts))
      (Campaign.fig5_series campaign Spec.s1 ~grid_step:120)
  in
  print_string (Into_util.Ascii_plot.plot ~x_label:"# simulations" ~y_label:"FoM" series);
  print_newline ();
  print_endline (Report.table2 campaign);
  print_newline ();
  print_endline
    (Report.table3 campaign ~methods:[ Methods.Fe_ga; Methods.Vgae_bo; Methods.Into_oa ]);
  (* CSV artifacts for downstream processing. *)
  (try
     Into_experiments.Csv.write_file ~path:"campaign_runs.csv"
       (Into_experiments.Csv.campaign_runs campaign);
     Into_experiments.Csv.write_file ~path:"campaign_table2.csv"
       (Into_experiments.Csv.campaign_table2 campaign);
     print_endline "\n(wrote campaign_runs.csv and campaign_table2.csv)"
   with Sys_error msg -> Printf.eprintf "csv export failed: %s\n" msg);
  campaign

(* --- E8b: ablations over INTO-OA's own design choices --- *)

let run_ablations scale =
  section "E8b: ablation study (WL depth, wEI weight, pool size) on S-4";
  let scale = { scale with Methods.runs = min scale.Methods.runs 4 } in
  let rows =
    Into_experiments.Ablation.run
      ~progress:(fun s -> Printf.eprintf "  [%s]\n%!" s)
      ~spec:Spec.s4 ~scale ~seed:777 ()
  in
  print_endline (Into_experiments.Ablation.report Spec.s4 rows)

(* --- E5: gradients vs sensitivity --- *)

let run_interpretability scale =
  section "E5: identification of critical structures (Section IV-B)";
  (* A dedicated INTO-OA run keeps its WL-GP surrogates for the analysis. *)
  let rng = Into_util.Rng.create ~seed:44 in
  let config =
    {
      (Into_core.Topo_bo.default_config Into_core.Candidates.Mixed) with
      Into_core.Topo_bo.n_init = scale.Methods.n_init;
      iterations = scale.Methods.iterations;
      pool = scale.Methods.pool;
    }
  in
  let r = Into_core.Topo_bo.run ~config ~rng ~spec:Spec.s4 () in
  match r.Into_core.Topo_bo.best with
  | None -> print_endline "  (no feasible S-4 design found at this scale)"
  | Some design ->
    let report =
      Into_experiments.Interpret_exp.analyze ~models:r.Into_core.Topo_bo.models
        ~spec:Spec.s4 ~design
    in
    print_endline (Report.gradients report)

(* --- E6: refinement --- *)

let run_refinement scale =
  section "E6: topology refinement of C1 and C2 under S-5 (Fig. 7, Table IV)";
  let rng = Into_util.Rng.create ~seed:45 in
  let report = Into_experiments.Refine_exp.run ~scale ~rng () in
  Printf.printf "  (surrogate training: %d simulations from an S-5 INTO-OA run)\n\n"
    report.Into_experiments.Refine_exp.models_sims;
  print_endline (Report.table4 report);
  report

(* --- E7: transistor level --- *)

let run_tlevel campaign refinement =
  section "E7: transistor-level validation (Table V)";
  let rows =
    Into_experiments.Tlevel_exp.from_campaign campaign
      ~methods:[ Methods.Fe_ga; Methods.Vgae_bo; Methods.Into_oa ]
    @ Into_experiments.Tlevel_exp.from_refinements refinement
  in
  print_endline (Report.table5 rows)

(* --- E9: surrogate quality --- *)

let run_surrogate_quality scale =
  section "E9: held-out surrogate quality (WL-GP vs continuous embedding)";
  let sizing_config =
    {
      Into_core.Sizing.default_config with
      Into_core.Sizing.n_init = scale.Methods.sizing_init;
      n_iter = scale.Methods.sizing_iters;
    }
  in
  let r =
    Into_experiments.Surrogate_exp.run
      ~progress:(fun s -> Printf.eprintf "  [%s]\n%!" s)
      ~n_train:60 ~n_test:30 ~spec:Spec.s1 ~sizing_config ~seed:99 ()
  in
  print_endline (Into_experiments.Surrogate_exp.render Spec.s1 r)

let () =
  parse_args ();
  run_microbenchmarks ();
  let scale = Methods.scale_of_env () in
  let runtime = make_runtime () in
  let campaign = run_campaign runtime scale in
  run_interpretability scale;
  let refinement = run_refinement scale in
  run_tlevel campaign refinement;
  run_ablations scale;
  run_surrogate_quality scale;
  Printf.eprintf "%s\n%!" (Into_runtime.Exec.summary runtime);
  Option.iter Into_runtime.Checkpoint.close (Into_runtime.Exec.checkpoint runtime);
  print_newline ()
