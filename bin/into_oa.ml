(* The INTO-OA command-line interface.

   Subcommands:
     specs      - print the Table I specification sets
     optimize   - run a topology-optimization method on a spec
     evaluate   - size and report one topology (by design-space index)
     lint       - static verification: one topology, or the whole space
     refine     - refine the C1/C2 legacy designs for S-5
     tables     - regenerate the paper's tables (thin wrapper over the
                  experiment harness; see also bench/main.exe)                *)

open Cmdliner

module Spec = Into_circuit.Spec
module Topology = Into_circuit.Topology
module Perf = Into_circuit.Perf
module Methods = Into_experiments.Methods

let spec_conv =
  let parse s =
    match Spec.find s with
    | spec -> Ok spec
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown spec %S (expected S-1 .. S-5)" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt s.Spec.name)

let method_conv =
  let parse s =
    match List.find_opt (fun m -> String.equal (Methods.name m) s) Methods.all with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown method %S (expected %s)" s
             (String.concat ", " (List.map Methods.name Methods.all))))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Methods.name m))

let spec_arg =
  Arg.(value & opt spec_conv Spec.s1 & info [ "spec" ] ~docv:"SPEC" ~doc:"Specification set (S-1 .. S-5).")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* --- runtime engine flags (shared by optimize / evaluate / tables) --- *)

type runtime_flags = {
  jobs : int;
  cache_dir : string;
  no_cache : bool;
  resume : bool;
  retries : int;
  task_deadline : float option;
  chaos : string option;
}

let runtime_term =
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for parallel evaluation. Default 1 (serial); 0 means \
                   one per core. Results are identical at any job count.")
  in
  let cache_dir =
    Arg.(value & opt string ".into-oa-cache"
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Directory holding the persistent evaluation cache and checkpoint \
                   journals (default $(b,.into-oa-cache)).")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable the persistent evaluation cache.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from the checkpoint journal left by an interrupted invocation \
                   instead of starting fresh.")
  in
  let retries =
    Arg.(value & opt int 2
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retries per failed evaluation task (default 2). Transient failures \
                   re-run the same task after a backoff; numerical ones re-seed \
                   deterministically.")
  in
  let task_deadline =
    Arg.(value & opt (some float) None
         & info [ "task-deadline" ] ~docv:"SECS"
             ~doc:"Cooperative wall-clock deadline per sizing run; an expired task is \
                   classified as a timeout and retried. Default: none.")
  in
  let chaos =
    Arg.(value & opt (some string) None
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Arm the deterministic fault-injection harness, e.g. \
                   $(b,seed=7,delay=0.2,crash=0.1). Sites: singular, nan, delay, crash, \
                   cache, tear; $(b,all) sets every rate; rates in [0,1].")
  in
  Term.(const (fun jobs cache_dir no_cache resume retries task_deadline chaos ->
            { jobs; cache_dir; no_cache; resume; retries; task_deadline; chaos })
        $ jobs $ cache_dir $ no_cache $ resume $ retries $ task_deadline $ chaos)

let make_runtime ?journal flags =
  let cache =
    if flags.no_cache then None
    else Some (Into_runtime.Cache.create ~dir:flags.cache_dir)
  in
  let checkpoint =
    Option.map
      (fun name ->
        Into_runtime.Checkpoint.start
          ~path:(Filename.concat flags.cache_dir name)
          ~fresh:(not flags.resume))
      journal
  in
  let faultin =
    Option.map
      (fun spec ->
        match Into_runtime.Faultin.parse spec with
        | Ok fi -> fi
        | Error msg ->
          Printf.eprintf "bad --chaos spec: %s\n" msg;
          exit 2)
      flags.chaos
  in
  let supervise =
    {
      Into_runtime.Supervise.default_policy with
      Into_runtime.Supervise.max_retries = max 0 flags.retries;
      deadline_s = flags.task_deadline;
    }
  in
  Into_runtime.Exec.create ~jobs:flags.jobs ?cache ?checkpoint ~supervise ?faultin ()

(* The summary goes to stderr so stdout stays identical across -j values. *)
let finish_runtime runtime =
  Printf.eprintf "%s\n%!" (Into_runtime.Exec.summary runtime);
  Option.iter Into_runtime.Checkpoint.close (Into_runtime.Exec.checkpoint runtime)

let iterations_arg =
  Arg.(value & opt int 50 & info [ "iterations" ] ~docv:"N" ~doc:"Search iterations.")

let pool_arg =
  Arg.(value & opt int 200 & info [ "pool" ] ~docv:"N" ~doc:"Candidate pool size.")

(* --- specs --- *)

let specs_cmd =
  let run () = List.iter (fun s -> print_endline (Spec.to_string s)) Spec.all in
  Cmd.v (Cmd.info "specs" ~doc:"Print the Table I specification sets.")
    Term.(const run $ const ())

(* --- optimize --- *)

let optimize method_id spec seed iterations pool verbose flags =
  let scale =
    { (Methods.scale_of_env ()) with Methods.runs = 1; iterations; pool }
  in
  let runtime = make_runtime ~journal:"optimize.ckpt" flags in
  let campaign =
    Into_experiments.Campaign.execute ~runtime ~methods:[ method_id ] ~specs:[ spec ]
      ~scale ~seed ()
  in
  let trace =
    match campaign with
    | [ r ] -> r.Into_experiments.Campaign.trace
    | _ -> assert false (* the grid has exactly one cell *)
  in
  if verbose then
    List.iter
      (fun (s : Into_core.Topo_bo.step) ->
        Printf.printf "iter %2d  #sim %4d  best %s  %s\n" s.Into_core.Topo_bo.iteration
          s.Into_core.Topo_bo.cumulative_sims
          (match s.Into_core.Topo_bo.best_fom_so_far with
          | Some f -> Printf.sprintf "%10.1f" f
          | None -> "         -")
          (match (s.Into_core.Topo_bo.evaluation, s.Into_core.Topo_bo.rejection) with
          | Some e, _ -> Topology.to_string e.Into_core.Evaluator.topology
          | None, [] -> "(simulation failure)"
          | None, d :: _ ->
            Printf.sprintf "(rejected: %s)" (Into_analysis.Diagnostic.to_string d)))
      trace.Methods.steps;
  Printf.printf "%s on %s: %d simulations" (Methods.name method_id) spec.Spec.name
    trace.Methods.total_sims;
  if trace.Methods.rejections > 0 then
    Printf.printf ", %d candidates rejected by the static gate" trace.Methods.rejections;
  print_newline ();
  (match trace.Methods.best with
  | None -> print_endline "No feasible design found."
  | Some e ->
    Printf.printf "Best design: %s\n  %s\n"
      (Topology.to_string e.Into_core.Evaluator.topology)
      (Perf.to_string e.Into_core.Evaluator.perf ~cl_f:spec.Spec.cl_f));
  finish_runtime runtime

let optimize_cmd =
  let method_arg =
    Arg.(value & opt method_conv Methods.Into_oa
         & info [ "method" ] ~docv:"METHOD" ~doc:"Optimization method.")
  in
  let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the trace.") in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run topology optimization on a specification.")
    Term.(const optimize $ method_arg $ spec_arg $ seed_arg $ iterations_arg $ pool_arg
          $ verbose_arg $ runtime_term)

(* --- evaluate --- *)

let evaluate index spec seed flags =
  match Topology.of_index index with
  | exception Invalid_argument _ ->
    Printf.eprintf "index out of range (0 .. %d)\n" (Topology.space_size - 1);
    exit 1
  | topo ->
    Printf.printf "Topology %d: %s\n" index (Topology.to_string topo);
    let runtime = make_runtime flags in
    let task =
      Into_core.Evaluator.task ~spec ~sizing_config:Into_core.Sizing.default_config ~seed
        topo
    in
    let outcome = Into_runtime.Exec.evaluate runtime task in
    print_endline (Into_core.Design_report.outcome_summary ~cl_f:spec.Spec.cl_f outcome);
    finish_runtime runtime

let evaluate_cmd =
  let index_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"INDEX" ~doc:"Design-space index.")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Size one topology (by index) for a specification.")
    Term.(const evaluate $ index_arg $ spec_arg $ seed_arg $ runtime_term)

(* --- lint --- *)

let lint all codes index spec =
  let module Diagnostic = Into_analysis.Diagnostic in
  if codes then begin
    List.iter
      (fun code ->
        Printf.printf "%s  %-7s  %s\n" (Diagnostic.code_id code)
          (Diagnostic.severity_name (Diagnostic.severity_of_code code))
          (Diagnostic.describe_code code))
      Diagnostic.all_codes;
    exit 0
  end;
  if all then begin
    let report = Into_analysis.Sweep.run ~cl_f:spec.Spec.cl_f () in
    print_endline (Into_analysis.Sweep.summary report);
    exit (if report.Into_analysis.Sweep.errors > 0 then 1 else 0)
  end;
  match index with
  | None ->
    prerr_endline "lint: pass a design-space INDEX, --all or --codes";
    exit 2
  | Some idx ->
    (match Topology.of_index idx with
    | exception Invalid_argument _ ->
      Printf.eprintf "index out of range (0 .. %d)\n" (Topology.space_size - 1);
      exit 1
    | topo -> Printf.printf "Topology %d: %s\n" idx (Topology.to_string topo));
    let diags =
      Into_analysis.Diagnostic.by_severity
        (Into_analysis.Sweep.check_index ~cl_f:spec.Spec.cl_f idx)
    in
    if diags = [] then print_endline "clean: no diagnostics"
    else List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
    exit (if Diagnostic.has_errors diags then 1 else 0)

let lint_cmd =
  let all_arg =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Lint every topology of the design space (exit 1 on any error).")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ] ~doc:"Print the diagnostic code table and exit.")
  in
  let index_arg =
    Arg.(value & pos 0 (some int) None & info [] ~docv:"INDEX" ~doc:"Design-space index.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static verification: audit topologies and their expanded netlists (floating \
          nodes, dangling transconductors, malformed values) without running any \
          simulation.")
    Term.(const lint $ all_arg $ codes_arg $ index_arg $ spec_arg)

(* --- refine --- *)

let refine seed iterations pool =
  let scale = { (Methods.scale_of_env ()) with Methods.iterations; pool } in
  let rng = Into_util.Rng.create ~seed in
  let report = Into_experiments.Refine_exp.run ~scale ~rng () in
  print_endline (Into_experiments.Report.table4 report)

let refine_cmd =
  Cmd.v
    (Cmd.info "refine" ~doc:"Refine the C1/C2 legacy designs to meet S-5 (Table IV).")
    Term.(const refine $ seed_arg $ iterations_arg $ pool_arg)

(* --- analyze --- *)

let analyze index spec seed spice =
  match Topology.of_index index with
  | exception Invalid_argument _ ->
    Printf.eprintf "index out of range (0 .. %d)\n" (Topology.space_size - 1);
    exit 1
  | topo ->
    Printf.printf "Topology %d: %s\n" index (Topology.to_string topo);
    let rng = Into_util.Rng.create ~seed in
    let sizing =
      match Into_core.Sizing.best (Into_core.Sizing.optimize ~rng ~spec topo) with
      | Some o -> o.Into_core.Sizing.sizing
      | None ->
        Printf.eprintf "no sizing simulated successfully\n";
        exit 1
    in
    let cl_f = spec.Spec.cl_f in
    (match Perf.evaluate topo ~sizing ~cl_f with
    | Some p ->
      Printf.printf "%s  (meets %s: %b)\n\n" (Perf.to_string p ~cl_f) spec.Spec.name
        (Perf.satisfies p spec)
    | None -> ());
    let netlist = Into_circuit.Netlist.build topo ~sizing ~cl_f in
    print_endline (Into_circuit.Poles_zeros.describe (Into_circuit.Poles_zeros.analyze netlist));
    let closed = Into_circuit.Poles_zeros.closed_loop_poles netlist in
    Printf.printf "unity-feedback stable: %b\n\n"
      (List.for_all (fun z -> z.Complex.re < 0.0) closed);
    let w = Into_circuit.Transient.step_response netlist in
    (match Into_circuit.Transient.measure w with
    | None -> print_endline "closed-loop step: no DC operating point (singular at DC)"
    | Some m ->
      Printf.printf "closed-loop step: overshoot %.1f%%, settling %s\n"
        m.Into_circuit.Transient.overshoot_pct
        (match m.Into_circuit.Transient.settling_time_s with
        | Some t -> Printf.sprintf "%.3g s (1%% band)" t
        | None -> "did not settle"));
    let nz = Into_circuit.Noise.analyze netlist in
    Printf.printf "noise: %.3g Vrms at the output, %s input-referred\n"
      nz.Into_circuit.Noise.output_rms_v
      (match nz.Into_circuit.Noise.input_spot_nv with
      | Some v -> Printf.sprintf "%.1f nV/sqrt(Hz)" v
      | None -> "n/a (zero signal gain)");
    let mc =
      Into_circuit.Montecarlo.run ~rng:(Into_util.Rng.create ~seed:(seed + 1)) ~spec topo
        ~sizing
    in
    Printf.printf "monte-carlo (5%% spread, %d trials): yield %.0f%%, worst PM %.1f deg\n"
      mc.Into_circuit.Montecarlo.trials
      (100.0 *. mc.Into_circuit.Montecarlo.yield)
      mc.Into_circuit.Montecarlo.worst_pm_deg;
    if spice then begin
      print_newline ();
      print_string (Into_circuit.Spice_export.behavioral topo ~sizing ~cl_f)
    end

let analyze_cmd =
  let index_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"INDEX" ~doc:"Design-space index.")
  in
  let spice_arg = Arg.(value & flag & info [ "spice" ] ~doc:"Also print a SPICE deck.") in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Size a topology, then characterize it: poles/zeros, exact stability, step \
          response, noise, Monte-Carlo yield.")
    Term.(const analyze $ index_arg $ spec_arg $ seed_arg $ spice_arg)

(* --- tables --- *)

let tables seed scale_name flags =
  let scale =
    match Methods.scale_of_name scale_name with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown scale %S (expected smoke, paper or env)\n" scale_name;
      exit 2
  in
  let runtime = make_runtime ~journal:"campaign.ckpt" flags in
  let campaign =
    Into_experiments.Campaign.execute
      ~progress:
        (Into_runtime.Progress.of_string_renderer (fun s -> Printf.eprintf "  [%s]\n%!" s))
      ~runtime ~scale ~seed ()
  in
  print_endline (Into_experiments.Report.table1 ());
  print_newline ();
  List.iter
    (fun spec ->
      print_endline (Into_experiments.Report.fig5 campaign spec);
      print_newline ())
    Spec.all;
  print_endline (Into_experiments.Report.table2 campaign);
  print_newline ();
  print_endline
    (Into_experiments.Report.table3 campaign
       ~methods:[ Methods.Fe_ga; Methods.Vgae_bo; Methods.Into_oa ]);
  print_newline ();
  print_endline (Into_experiments.Report.lint_summary campaign);
  finish_runtime runtime

let tables_cmd =
  let scale_arg =
    Arg.(value & opt string "env"
         & info [ "scale" ] ~docv:"NAME"
             ~doc:"Campaign scale: $(b,smoke) (CI-sized), $(b,paper) (full paper setup) \
                   or $(b,env) (default; controlled by INTO_OA_RUNS / INTO_OA_ITERS / \
                   INTO_OA_FULL).")
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:
         "Regenerate Fig. 5 and Tables I-III (scale via --scale or INTO_OA_RUNS / \
          INTO_OA_ITERS / INTO_OA_FULL).")
    Term.(const tables $ seed_arg $ scale_arg $ runtime_term)

let () =
  let info =
    Cmd.info "into_oa" ~version:"1.0.0"
      ~doc:"Interpretable topology optimization for operational amplifiers."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ specs_cmd; optimize_cmd; evaluate_cmd; analyze_cmd; lint_cmd; refine_cmd; tables_cmd ]))
