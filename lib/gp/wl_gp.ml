module Wl = Into_graph.Wl
module Wl_kernel = Into_graph.Wl_kernel

type t = {
  dict : Wl.dict;
  h : int;
  feats : Wl.features array;
  gp : Gp.t;
}

let default_h_candidates = [ 0; 1; 2; 3 ]
let default_noise_candidates = [ 1e-4; 1e-3; 1e-2; 1e-1; 0.3; 1.0 ]
let default_signal_candidates = [ 0.5; 1.0; 2.0 ]

let fit ?(h_candidates = default_h_candidates)
    ?(noise_candidates = default_noise_candidates)
    ?(signal_candidates = default_signal_candidates) ~dict ~graphs ~y () =
  let n = Array.length graphs in
  if n = 0 then invalid_arg "Wl_gp.fit: empty data";
  if Array.length y <> n then invalid_arg "Wl_gp.fit: length mismatch";
  (* One NaN target silently corrupts the whole Cholesky factorization and
     every prediction after it: refuse loudly, naming the offender. *)
  Array.iteri
    (fun i yi ->
      if not (Float.is_finite yi) then
        invalid_arg
          (Printf.sprintf "Wl_gp.fit: non-finite target y.(%d) = %h" i yi))
    y;
  if h_candidates = [] || noise_candidates = [] || signal_candidates = [] then
    invalid_arg "Wl_gp.fit: empty candidate list";
  let best = ref None in
  let consider model =
    match !best with
    | Some prev when Gp.log_marginal_likelihood prev.gp >= Gp.log_marginal_likelihood model.gp
      ->
      ()
    | Some _ | None -> best := Some model
  in
  List.iter
    (fun h ->
      let feats = Array.map (fun g -> Wl.extract dict ~h g) graphs in
      let gram = Wl_kernel.gram feats in
      List.iter
        (fun noise ->
          List.iter
            (fun signal ->
              match Gp.fit ~gram ~y ~signal ~noise with
              | gp -> consider { dict; h; feats; gp }
              | exception Into_linalg.Cholesky.Not_positive_definite -> ())
            signal_candidates)
        noise_candidates)
    h_candidates;
  match !best with
  | Some model -> model
  | None ->
    (* Every candidate failed the Cholesky.  The gram matrix is PSD by
       construction, so escalating the noise floor must eventually yield a
       positive-definite system; fall back rather than abort the BO run. *)
    let h = match h_candidates with h :: _ -> h | [] -> 0 in
    let feats = Array.map (fun g -> Wl.extract dict ~h g) graphs in
    let gram = Wl_kernel.gram feats in
    let rec with_noise noise =
      if noise > 1e12 then
        invalid_arg "Wl_gp.fit: gram matrix is numerically indefinite"
      else
        match Gp.fit ~gram ~y ~signal:1.0 ~noise with
        | gp -> { dict; h; feats; gp }
        | exception Into_linalg.Cholesky.Not_positive_definite ->
          with_noise (noise *. 10.0)
    in
    with_noise 1.0

let h t = t.h
let log_marginal_likelihood t = Gp.log_marginal_likelihood t.gp
let gp t = t.gp
let dict t = t.dict

let features_of t g = Wl.extract t.dict ~h:t.h g

let predict t g =
  let f = features_of t g in
  let k_star = Wl_kernel.cross t.feats f in
  Gp.predict t.gp ~k_star ~k_self:1.0

(* Eq. 5 adapted to the normalized kernel
   k_n(phi, phi_i) = <phi, phi_i> / (|phi| |phi_i|):
   d k_n / d phi_j = phi_i_j / (r r_i) - <phi, phi_i> phi_j / (r^3 r_i). *)
let feature_gradient t g ~feature_id =
  let f = features_of t g in
  let r = Wl.norm f in
  if r = 0.0 then 0.0
  else
    let phi_j = float_of_int (Wl.count f feature_id) in
    let alpha = Gp.alpha t.gp in
    let acc = ref 0.0 in
    Array.iteri
      (fun i fi ->
        let ri = Wl.norm fi in
        if ri > 0.0 then begin
          let d = Wl.dot f fi in
          let phi_ij = float_of_int (Wl.count fi feature_id) in
          let dk = (phi_ij /. (r *. ri)) -. (d *. phi_j /. (r *. r *. r *. ri)) in
          acc := !acc +. (alpha.(i) *. dk)
        end)
      t.feats;
    Gp.y_std t.gp *. Gp.signal t.gp *. !acc

let present_feature_gradients t g =
  let f = features_of t g in
  List.map (fun (id, _) -> (id, feature_gradient t g ~feature_id:id)) (Wl.to_list f)
