(** The WL-kernel Gaussian process over circuit graphs (Section III-B).

    One [Wl_gp.t] models one performance metric.  The WL iteration count
    [h], the noise level and the signal variance are selected by maximum
    marginal likelihood, as the paper prescribes ("h ... can be determined
    through maximum likelihood estimation in WL-GP").  The kernel is the
    normalized WL kernel, so [k(G, G) = 1].

    The analytic gradient of the posterior mean with respect to the WL
    feature counts (Eq. 5) is exposed for the interpretability layer. *)

type t

val default_h_candidates : int list
(** [0; 1; 2; 3]. *)

val fit :
  ?h_candidates:int list ->
  ?noise_candidates:float list ->
  ?signal_candidates:float list ->
  dict:Into_graph.Wl.dict ->
  graphs:Into_graph.Labeled_graph.t array ->
  y:float array ->
  unit ->
  t
(** @raise Invalid_argument on empty data, mismatched lengths, or a
    non-finite training target (the diagnostic names the first offending
    index — a NaN would otherwise corrupt the factorization silently). *)

val h : t -> int
val log_marginal_likelihood : t -> float
val gp : t -> Gp.t

val predict : t -> Into_graph.Labeled_graph.t -> float * float
(** Posterior mean and variance (Eqs. 3-4) for a new graph. *)

val feature_gradient : t -> Into_graph.Labeled_graph.t -> feature_id:int -> float
(** Expected derivative of the posterior mean w.r.t. the count of feature
    [feature_id] at the query graph (Eq. 5), in original target units and
    accounting for the kernel normalization. *)

val present_feature_gradients : t -> Into_graph.Labeled_graph.t -> (int * float) list
(** Gradient for every feature present in the query graph, sorted by id. *)

val features_of : t -> Into_graph.Labeled_graph.t -> Into_graph.Wl.features
(** Feature vector of a graph under the model's dictionary and selected h. *)

val dict : t -> Into_graph.Wl.dict
