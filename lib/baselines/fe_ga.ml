module Rng = Into_util.Rng
module Topology = Into_circuit.Topology
module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Evaluator = Into_core.Evaluator
module Topo_bo = Into_core.Topo_bo

type config = {
  population : int;
  iterations : int;
  tournament : int;
  mutation_probability : float;
  sizing : Into_core.Sizing.config;
  runner : Evaluator.runner;
}

let default_config =
  {
    population = 10;
    iterations = 50;
    tournament = 3;
    mutation_probability = 0.2;
    sizing = Into_core.Sizing.default_config;
    runner = Evaluator.serial_runner;
  }

type result = {
  steps : Topo_bo.step list;
  best : Evaluator.evaluation option;
  total_sims : int;
  rejections : int;
}

let crossover rng a b =
  List.fold_left
    (fun child slot ->
      let donor = if Rng.bool rng then a else b in
      Topology.set child slot (Topology.get donor slot))
    a Topology.slots

type state = {
  cfg : config;
  rng : Rng.t;
  spec : Spec.t;
  visited : (int, unit) Hashtbl.t;
  mutable population : Evaluator.evaluation list;
  mutable steps : Topo_bo.step list;
  mutable total_sims : int;
  mutable rejections : int;
  mutable best : (Evaluator.evaluation * float) option;
}

let fitness st (e : Evaluator.evaluation) =
  if e.feasible then e.fom else -.Perf.violation e.perf st.spec

let record st ~iteration ~evaluation ~rejection ~failure ~n_sims =
  st.total_sims <- st.total_sims + n_sims;
  (match evaluation with
  | Some (e : Evaluator.evaluation) when e.feasible -> (
    match st.best with
    | Some (_, f) when f >= e.fom -> ()
    | Some _ | None -> st.best <- Some (e, e.fom))
  | Some _ | None -> ());
  st.steps <-
    {
      Topo_bo.iteration;
      evaluation;
      rejection;
      failure;
      cumulative_sims = st.total_sims;
      best_fom_so_far = Option.map snd st.best;
    }
    :: st.steps

let record_outcome st ~iteration outcome =
  match outcome with
  | Evaluator.Evaluated e ->
    record st ~iteration ~evaluation:(Some e) ~rejection:[] ~failure:None
      ~n_sims:e.n_sims;
    Some e
  | Evaluator.Rejected diags ->
    st.rejections <- st.rejections + 1;
    record st ~iteration ~evaluation:None ~rejection:diags ~failure:None ~n_sims:0;
    None
  | Evaluator.Failed reason ->
    record st ~iteration ~evaluation:None ~rejection:[] ~failure:(Some reason)
      ~n_sims:(Evaluator.sims_of_failed_evaluation ~sizing_config:st.cfg.sizing);
    None

(* Seed drawn at scheduling time: see [Into_core.Evaluator.fresh_seed]. *)
let task_of st topo =
  Hashtbl.replace st.visited (Topology.to_index topo) ();
  Evaluator.task ~spec:st.spec ~sizing_config:st.cfg.sizing
    ~seed:(Evaluator.fresh_seed st.rng) topo

let evaluate st ~iteration topo =
  record_outcome st ~iteration (st.cfg.runner.Evaluator.run_one (task_of st topo))

let tournament_select st =
  let pop = Array.of_list st.population in
  let pick () = pop.(Rng.int st.rng (Array.length pop)) in
  let rec go best n =
    if n = 0 then best
    else
      let c = pick () in
      go (if fitness st c > fitness st best then c else best) (n - 1)
  in
  go (pick ()) (st.cfg.tournament - 1)

(* Offspring: uniform crossover then per-slot mutation, retried a few times
   to find an unvisited genotype; falls back to a random topology. *)
let offspring st =
  let make () =
    let a = (tournament_select st).Evaluator.topology in
    let b = (tournament_select st).Evaluator.topology in
    let child = crossover st.rng a b in
    List.fold_left
      (fun acc slot ->
        if Rng.float st.rng < st.cfg.mutation_probability then
          let types = Topology.allowed slot in
          Topology.set acc slot (Rng.choice st.rng types)
        else acc)
      child Topology.slots
  in
  let rec search attempts =
    if attempts = 0 then
      let rec random_unvisited n =
        let t = Topology.random st.rng in
        if n = 0 || not (Hashtbl.mem st.visited (Topology.to_index t)) then t
        else random_unvisited (n - 1)
      in
      random_unvisited 50
    else
      let c = make () in
      if Hashtbl.mem st.visited (Topology.to_index c) then search (attempts - 1) else c
  in
  search 20

let replace_worst st e =
  match
    List.sort (fun a b -> compare (fitness st a) (fitness st b)) st.population
  with
  | [] -> st.population <- [ e ]
  | worst :: rest ->
    if List.length st.population < st.cfg.population then
      st.population <- e :: st.population
    else if fitness st e > fitness st worst then st.population <- e :: rest
    else ()

let run ?(config = default_config) ~rng ~spec () =
  let st =
    {
      cfg = config;
      rng;
      spec;
      visited = Hashtbl.create 256;
      population = [];
      steps = [];
      total_sims = 0;
      rejections = 0;
      best = None;
    }
  in
  (* The initial population evaluates as one batch (parallel under a pooled
     runner); outcomes are recorded in draw order, so the result matches the
     serial interleaving exactly. *)
  let init_tasks = ref [] in
  let added = ref 0 in
  let guard = ref 0 in
  while !added < config.population && !guard < 100 * config.population do
    incr guard;
    let t = Topology.random st.rng in
    if not (Hashtbl.mem st.visited (Topology.to_index t)) then begin
      incr added;
      init_tasks := task_of st t :: !init_tasks
    end
  done;
  let init_outcomes =
    config.runner.Evaluator.run_batch (Array.of_list (List.rev !init_tasks))
  in
  Array.iter
    (fun outcome ->
      match record_outcome st ~iteration:0 outcome with
      | Some e -> st.population <- e :: st.population
      | None -> ())
    init_outcomes;
  for iteration = 1 to config.iterations do
    if st.population = [] then ignore (evaluate st ~iteration (Topology.random st.rng))
    else
      let child = offspring st in
      match evaluate st ~iteration child with
      | Some e -> replace_worst st e
      | None -> ()
  done;
  {
    steps = List.rev st.steps;
    best = Option.map fst st.best;
    total_sims = st.total_sims;
    rejections = st.rejections;
  }
