(** FE-GA baseline: genetic algorithm over the topology genotype, standing
    in for the feature-embedding GA of [14] (see DESIGN.md, substitutions).

    Steady-state GA: a fixed-size population of sized topologies; each
    iteration tournament-selects two parents, applies per-slot uniform
    crossover and mutation, sizes the offspring with the same inner BO as
    every other method, and replaces the worst individual.  The one-hot
    feature embedding is used to avoid re-evaluating already visited
    genotypes.  Fitness is FoM for feasible designs and the negated
    constraint violation otherwise. *)

type config = {
  population : int;  (** initial random individuals (paper: 10) *)
  iterations : int;  (** offspring evaluations (paper: 50) *)
  tournament : int;  (** tournament size *)
  mutation_probability : float;  (** per-slot *)
  sizing : Into_core.Sizing.config;
  runner : Into_core.Evaluator.runner;
      (** executes evaluation tasks; results are runner-independent (each
          task carries its own seed) *)
}

val default_config : config

type result = {
  steps : Into_core.Topo_bo.step list;  (** same shape as the BO trace *)
  best : Into_core.Evaluator.evaluation option;
  total_sims : int;
  rejections : int;  (** candidates rejected by the static gate *)
}

val run :
  ?config:config -> rng:Into_util.Rng.t -> spec:Into_circuit.Spec.t -> unit -> result

val crossover :
  Into_util.Rng.t ->
  Into_circuit.Topology.t ->
  Into_circuit.Topology.t ->
  Into_circuit.Topology.t
(** Per-slot uniform crossover (exposed for testing). *)
