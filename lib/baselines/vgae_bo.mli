(** VGAE-BO baseline [16]: Bayesian optimization in a continuous graph
    embedding (see {!Embedding} for the encoder substitution).

    The loop mirrors Algorithm 1 — same initial design, iteration count,
    candidate pool, wEI acquisition and inner sizing BO — but the surrogate
    is an RBF GP over latent vectors instead of a WL-kernel GP over graphs,
    which is precisely the comparison the paper draws. *)

type config = {
  n_init : int;
  iterations : int;
  pool : int;  (** acquisition candidates per iteration (paper: 200) *)
  wei_w : float;
  refit_every : int;
  sizing : Into_core.Sizing.config;
  runner : Into_core.Evaluator.runner;
      (** executes evaluation tasks; results are runner-independent (each
          task carries its own seed) *)
}

val default_config : config

type result = {
  steps : Into_core.Topo_bo.step list;
  best : Into_core.Evaluator.evaluation option;
  total_sims : int;
  rejections : int;  (** candidates rejected by the static gate *)
}

val run :
  ?config:config -> rng:Into_util.Rng.t -> spec:Into_circuit.Spec.t -> unit -> result
