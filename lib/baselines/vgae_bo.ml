module Rng = Into_util.Rng
module Topology = Into_circuit.Topology
module Spec = Into_circuit.Spec
module Evaluator = Into_core.Evaluator
module Topo_bo = Into_core.Topo_bo
module Objective = Into_core.Objective
module Acquisition = Into_core.Acquisition
module Gp = Into_gp.Gp
module Rbf = Into_gp.Rbf

type config = {
  n_init : int;
  iterations : int;
  pool : int;
  wei_w : float;
  refit_every : int;
  sizing : Into_core.Sizing.config;
  runner : Evaluator.runner;
}

let default_config =
  {
    n_init = 10;
    iterations = 50;
    pool = 200;
    wei_w = 0.5;
    refit_every = 5;
    sizing = Into_core.Sizing.default_config;
    runner = Evaluator.serial_runner;
  }

type result = {
  steps : Topo_bo.step list;
  best : Evaluator.evaluation option;
  total_sims : int;
  rejections : int;
}

type state = {
  cfg : config;
  rng : Rng.t;
  spec : Spec.t;
  visited : (int, unit) Hashtbl.t;
  mutable evals : (Evaluator.evaluation * float array) list;  (** with latents *)
  mutable steps : Topo_bo.step list;
  mutable total_sims : int;
  mutable rejections : int;
  mutable best : (Evaluator.evaluation * float) option;
  mutable lengthscales : float array;
  mutable noises : float array;
}

let n_models = List.length Objective.metrics + 1

let record st ~iteration ~evaluation ~rejection ~failure ~n_sims =
  st.total_sims <- st.total_sims + n_sims;
  (match evaluation with
  | Some (e : Evaluator.evaluation) ->
    st.evals <- st.evals @ [ (e, Embedding.embed e.topology) ];
    if e.feasible then begin
      match st.best with
      | Some (_, f) when f >= e.fom -> ()
      | Some _ | None -> st.best <- Some (e, e.fom)
    end
  | None -> ());
  st.steps <-
    {
      Topo_bo.iteration;
      evaluation;
      rejection;
      failure;
      cumulative_sims = st.total_sims;
      best_fom_so_far = Option.map snd st.best;
    }
    :: st.steps

let record_outcome st ~iteration outcome =
  match outcome with
  | Evaluator.Evaluated e ->
    record st ~iteration ~evaluation:(Some e) ~rejection:[] ~failure:None
      ~n_sims:e.n_sims
  | Evaluator.Rejected diags ->
    st.rejections <- st.rejections + 1;
    record st ~iteration ~evaluation:None ~rejection:diags ~failure:None ~n_sims:0
  | Evaluator.Failed reason ->
    record st ~iteration ~evaluation:None ~rejection:[] ~failure:(Some reason)
      ~n_sims:(Evaluator.sims_of_failed_evaluation ~sizing_config:st.cfg.sizing)

(* Seed drawn at scheduling time: see [Into_core.Evaluator.fresh_seed]. *)
let task_of st topo =
  Hashtbl.replace st.visited (Topology.to_index topo) ();
  Evaluator.task ~spec:st.spec ~sizing_config:st.cfg.sizing
    ~seed:(Evaluator.fresh_seed st.rng) topo

let evaluate st ~iteration topo =
  record_outcome st ~iteration (st.cfg.runner.Evaluator.run_one (task_of st topo))

let targets st =
  let xs = Array.of_list (List.map snd st.evals) in
  let n_metrics = List.length Objective.metrics in
  let ys =
    Array.init n_models (fun m ->
        Array.of_list
          (List.map
             (fun ((e : Evaluator.evaluation), _) ->
               if m < n_metrics then (Objective.metric_values e.perf).(m)
               else Objective.penalized_fom_value e.perf st.spec ~cl_f:st.spec.Spec.cl_f)
             st.evals))
  in
  (xs, ys)

let lengthscale_grid = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
let noise_grid = [ 1e-4; 1e-2; 1e-1 ]

let refit_hyperparameters st =
  let xs, ys = targets st in
  for m = 0 to n_models - 1 do
    let best = ref None in
    List.iter
      (fun l ->
        let gram = Rbf.gram ~lengthscale:l xs in
        List.iter
          (fun noise ->
            match Gp.fit ~gram ~y:ys.(m) ~signal:1.0 ~noise with
            | gp -> (
              let lml = Gp.log_marginal_likelihood gp in
              match !best with
              | Some (_, _, b) when b >= lml -> ()
              | Some _ | None -> best := Some (l, noise, lml))
            | exception Into_linalg.Cholesky.Not_positive_definite -> ())
          noise_grid)
      lengthscale_grid;
    match !best with
    | Some (l, noise, _) ->
      st.lengthscales.(m) <- l;
      st.noises.(m) <- noise
    | None -> ()
  done

let fit_models st =
  let xs, ys = targets st in
  ( xs,
    Array.init n_models (fun m ->
        let gram = Rbf.gram ~lengthscale:st.lengthscales.(m) xs in
        match Gp.fit ~gram ~y:ys.(m) ~signal:1.0 ~noise:st.noises.(m) with
        | gp -> Some gp
        | exception Into_linalg.Cholesky.Not_positive_definite -> None) )

let acquisition st (xs, models) best_tfom z =
  let predict m =
    Option.map
      (fun gp ->
        Gp.predict gp ~k_star:(Rbf.cross ~lengthscale:st.lengthscales.(m) xs z) ~k_self:1.0)
      models.(m)
  in
  let feas =
    List.mapi
      (fun m (bound, sense) ->
        match predict m with
        | None -> 1.0
        | Some (mean, var) ->
          Acquisition.probability_feasible ~mean ~std:(sqrt var) ~bound ~sense)
      (Objective.bounds st.spec)
  in
  match best_tfom with
  | None -> Acquisition.feasibility_only feas
  | Some best -> (
    match predict (n_models - 1) with
    | None -> Acquisition.feasibility_only feas
    | Some (mean, var) ->
      let ei = Acquisition.expected_improvement ~mean ~std:(sqrt var) ~best in
      Acquisition.weighted_ei ~w:st.cfg.wei_w ~ei ~feasibility:feas)

let bo_iteration st ~iteration =
  if List.length st.evals < 2 then evaluate st ~iteration (Topology.random st.rng)
  else begin
    if iteration mod st.cfg.refit_every = 1 || st.lengthscales.(0) = 0.0 then
      refit_hyperparameters st;
    let fitted = fit_models st in
    let best_tfom =
      Option.map
        (fun ((e : Evaluator.evaluation), _) ->
          Objective.penalized_fom_value e.perf st.spec ~cl_f:st.spec.Spec.cl_f)
        st.best
    in
    let best_candidate = ref None in
    let tries = ref 0 in
    while !tries < st.cfg.pool do
      incr tries;
      let t = Topology.random st.rng in
      if not (Hashtbl.mem st.visited (Topology.to_index t)) then begin
        let a = acquisition st fitted best_tfom (Embedding.embed t) in
        match !best_candidate with
        | Some (_, ba) when ba >= a -> ()
        | Some _ | None -> best_candidate := Some (t, a)
      end
    done;
    match !best_candidate with
    | Some (t, _) -> evaluate st ~iteration t
    | None -> ()
  end

let run ?(config = default_config) ~rng ~spec () =
  let st =
    {
      cfg = config;
      rng;
      spec;
      visited = Hashtbl.create 256;
      evals = [];
      steps = [];
      total_sims = 0;
      rejections = 0;
      best = None;
      lengthscales = Array.make n_models 0.0;
      noises = Array.make n_models 1e-2;
    }
  in
  (* Initial designs evaluate as one batch (parallel under a pooled runner);
     outcomes recorded in draw order match the serial interleaving. *)
  let init_tasks = ref [] in
  let added = ref 0 in
  let guard = ref 0 in
  while !added < config.n_init && !guard < 100 * config.n_init do
    incr guard;
    let t = Topology.random st.rng in
    if not (Hashtbl.mem st.visited (Topology.to_index t)) then begin
      incr added;
      init_tasks := task_of st t :: !init_tasks
    end
  done;
  let init_outcomes =
    config.runner.Evaluator.run_batch (Array.of_list (List.rev !init_tasks))
  in
  Array.iter (record_outcome st ~iteration:0) init_outcomes;
  for iteration = 1 to config.iterations do
    bo_iteration st ~iteration
  done;
  {
    steps = List.rev st.steps;
    best = Option.map fst st.best;
    total_sims = st.total_sims;
    rejections = st.rejections;
  }
