(** Topology evaluation: size a candidate topology with the inner BO and
    report the resulting performance as the topology's observation.

    Every candidate first passes the static verification gate
    ([Into_analysis]): the topology is audited against the rule set and a
    probe netlist (default sizing, the spec's load) is linted for
    structural singularities, dangling transconductors and malformed
    element values.  A candidate with Error-severity diagnostics is
    rejected {e before any simulation or LU factorization is attempted} —
    it costs no simulation budget and never pollutes the surrogate models.

    The reported metrics belong to the best sizing found: the highest-FoM
    feasible point when one exists, otherwise the minimum-violation point.
    [n_sims] counts every circuit simulation spent, which is the cost unit
    of all experiment tables. *)

type evaluation = {
  topology : Into_circuit.Topology.t;
  sizing : float array;  (** physical parameter values of the chosen point *)
  perf : Into_circuit.Perf.t;
  feasible : bool;
  fom : float;
  n_sims : int;  (** simulations spent sizing this topology *)
}

type outcome =
  | Evaluated of evaluation
  | Rejected of Into_analysis.Diagnostic.t list
      (** static gate fired; the Error-severity diagnostics, no simulation
          budget spent *)
  | Failed of Fail.t
      (** every sizing attempt failed to simulate; budget spent.  The
          payload is the dominant failure class of the sizing loop
          ([Fail.Timeout] when the deadline expired, otherwise the
          most-frequent class with ties resolved first-seen), surfaced by
          [Design_report], the retry supervisor and the campaign tables. *)

val static_diagnostics :
  spec:Into_circuit.Spec.t -> Into_circuit.Topology.t -> Into_analysis.Diagnostic.t list
(** All diagnostics (any severity) of the gate's checks for one topology:
    rule-set audit plus probe-netlist lint at the schema's default sizing
    with the spec's load capacitance. *)

val evaluate_gated :
  ?sizing_config:Sizing.config ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  Into_circuit.Topology.t ->
  outcome

val evaluate :
  ?sizing_config:Sizing.config ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  Into_circuit.Topology.t ->
  evaluation option
(** [evaluate_gated] collapsed to an option: [None] for both [Rejected] and
    [Failed] candidates (callers should treat this as a dead topology). *)

val sims_of_failed_evaluation : sizing_config:Sizing.config -> int
(** Budget charged when the outcome is [Failed] (a [Rejected] candidate
    charges nothing). *)

val sims_of_outcome : sizing_config:Sizing.config -> outcome -> int
(** Simulation budget spent producing one outcome: [n_sims] when evaluated,
    the failed-evaluation charge when [Failed], zero when [Rejected]. *)

(** {2 The evaluation task boundary}

    A {!task} is a self-contained, schedulable unit of evaluation work: it
    carries its own seed, so running it never touches the caller's random
    stream.  This is what makes topology evaluations safe to execute out of
    order, on another domain, or to replay from a persistent cache
    ([Into_runtime]) — the outcome is a pure function of the task. *)

type task = {
  task_topology : Into_circuit.Topology.t;
  task_spec : Into_circuit.Spec.t;
  task_sizing : Sizing.config;
  task_seed : int;  (** seeds a private [Rng.t] for the sizing loop *)
}

val task :
  spec:Into_circuit.Spec.t ->
  sizing_config:Sizing.config ->
  seed:int ->
  Into_circuit.Topology.t ->
  task

val fresh_seed : Into_util.Rng.t -> int
(** One bounded draw from the caller's stream, used as a task seed.  The
    draw happens whether or not the task is later served from a cache, so
    the caller's stream advances identically either way. *)

val run_task : task -> outcome
(** [evaluate_gated] on the task's own freshly created generator. *)

type runner = {
  run_one : task -> outcome;
  run_batch : task array -> outcome array;  (** order-preserving *)
}
(** How an optimizer executes its evaluation tasks.  The default
    {!serial_runner} computes in place; [Into_runtime.Exec.runner] swaps in
    a cache-backed, domain-parallel implementation without the optimizer
    noticing. *)

val serial_runner : runner
