(** Topology evaluation: size a candidate topology with the inner BO and
    report the resulting performance as the topology's observation.

    Every candidate first passes the static verification gate
    ([Into_analysis]): the topology is audited against the rule set and a
    probe netlist (default sizing, the spec's load) is linted for
    structural singularities, dangling transconductors and malformed
    element values.  A candidate with Error-severity diagnostics is
    rejected {e before any simulation or LU factorization is attempted} —
    it costs no simulation budget and never pollutes the surrogate models.

    The reported metrics belong to the best sizing found: the highest-FoM
    feasible point when one exists, otherwise the minimum-violation point.
    [n_sims] counts every circuit simulation spent, which is the cost unit
    of all experiment tables. *)

type evaluation = {
  topology : Into_circuit.Topology.t;
  sizing : float array;  (** physical parameter values of the chosen point *)
  perf : Into_circuit.Perf.t;
  feasible : bool;
  fom : float;
  n_sims : int;  (** simulations spent sizing this topology *)
}

type outcome =
  | Evaluated of evaluation
  | Rejected of Into_analysis.Diagnostic.t list
      (** static gate fired; the Error-severity diagnostics, no simulation
          budget spent *)
  | Failed  (** every sizing attempt failed to simulate; budget spent *)

val static_diagnostics :
  spec:Into_circuit.Spec.t -> Into_circuit.Topology.t -> Into_analysis.Diagnostic.t list
(** All diagnostics (any severity) of the gate's checks for one topology:
    rule-set audit plus probe-netlist lint at the schema's default sizing
    with the spec's load capacitance. *)

val evaluate_gated :
  ?sizing_config:Sizing.config ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  Into_circuit.Topology.t ->
  outcome

val evaluate :
  ?sizing_config:Sizing.config ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  Into_circuit.Topology.t ->
  evaluation option
(** [evaluate_gated] collapsed to an option: [None] for both [Rejected] and
    [Failed] candidates (callers should treat this as a dead topology). *)

val sims_of_failed_evaluation : sizing_config:Sizing.config -> int
(** Budget charged when the outcome is [Failed] (a [Rejected] candidate
    charges nothing). *)
