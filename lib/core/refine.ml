module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Params = Into_circuit.Params
module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec
module Wl_gp = Into_gp.Wl_gp

type move = {
  slot : Topology.slot;
  from_sub : Subcircuit.t;
  to_sub : Subcircuit.t;
  predicted_metric : float;
  achieved : Perf.t option;
}

type outcome = {
  original_perf : Perf.t;
  critical_metric : string option;
  refined : (Topology.t * float array * Perf.t) option;
  moves : move list;
  n_sims : int;
}

(* Transformed shortfall of each metric; positive means violated. *)
let shortfalls perf spec =
  let values = Objective.metric_values perf in
  List.mapi
    (fun i (m : Objective.metric) ->
      let bound, sense = List.nth (Objective.bounds spec) i in
      let gap =
        match sense with `Min -> bound -. values.(i) | `Max -> values.(i) -. bound
      in
      (m.name, sense, gap))
    Objective.metrics

let critical_of perf spec =
  let violated = List.filter (fun (_, _, gap) -> gap > 0.0) (shortfalls perf spec) in
  match violated with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun ((_, _, gb) as b) ((_, _, g) as c) -> if g > gb then c else b)
         first rest)

(* Goodness orientation: larger is better for `Min-bounded metrics, smaller
   is better for `Max-bounded ones. *)
let orient sense v = match sense with `Min -> v | `Max -> -.v

let worst_slot model topo sense =
  let reports = Attribution.slot_gradients model topo in
  let score slot =
    match
      List.find_opt (fun (r : Attribution.slot_report) -> r.slot = slot) reports
    with
    | Some r -> orient sense r.gradient
    | None -> 0.0 (* unconnected slot: no structure to blame *)
  in
  fst
    (List.fold_left
       (fun ((_, gb) as b) slot ->
         let g = score slot in
         if g < gb then (slot, g) else b)
       (Topology.V1_vout, infinity) Topology.slots)

(* Candidate moves, best first: alternatives for the worst slot are ranked
   ahead (the paper's primary procedure); if they run out, replacements in
   the remaining slots follow, everything ordered by the surrogate's
   prediction of the critical metric for the modified topology. *)
let ranked_moves model topo worst sense =
  let moves_for slot =
    let current = Topology.get topo slot in
    let options =
      List.filter
        (fun sub -> not (Subcircuit.equal sub current))
        (Array.to_list (Topology.allowed slot))
    in
    let scored =
      List.map
        (fun sub ->
          let candidate = Topology.set topo slot sub in
          let g = Into_graph.Circuit_graph.build candidate in
          let mean, _ = Wl_gp.predict model g in
          (slot, sub, mean, orient sense mean))
        options
    in
    List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) scored
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  let primary, overflow =
    let ranked = moves_for worst in
    (take 3 ranked, List.filteri (fun i _ -> i >= 3) ranked)
  in
  let others =
    overflow
    @ List.concat_map moves_for (List.filter (fun s -> s <> worst) Topology.slots)
  in
  primary @ List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) others

let refine ?(max_moves = 5) ?(sizing_config = Sizing.default_config) ~models ~rng ~spec
    ~sizing topology =
  let cl_f = spec.Spec.cl_f in
  let n_sims = ref 1 in
  let original_perf =
    match Perf.evaluate topology ~sizing ~cl_f with
    | Some p -> p
    | None -> invalid_arg "Refine.refine: original design does not simulate"
  in
  match critical_of original_perf spec with
  | None ->
    {
      original_perf;
      critical_metric = None;
      refined = Some (topology, sizing, original_perf);
      moves = [];
      n_sims = !n_sims;
    }
  | Some (metric_name, sense, _) ->
    let model =
      match List.assoc_opt metric_name models with
      | Some m -> m
      | None -> invalid_arg ("Refine.refine: missing surrogate for " ^ metric_name)
    in
    let worst = worst_slot model topology sense in
    let alternatives = ranked_moves model topology worst sense in
    let from_schema = Params.schema topology in
    let rec attempt moves budget = function
      | [] -> (List.rev moves, None)
      | _ when budget = 0 -> (List.rev moves, None)
      | (slot, sub, predicted, _) :: rest ->
        let candidate = Topology.set topology slot sub in
        let to_schema = Params.schema candidate in
        let start_phys =
          Sizing_transfer.transfer ~from_schema ~from_sizing:sizing ~to_schema
        in
        (* "The modified circuit part is resized": every parameter of the
           edited slot is free, the rest of the trusted design is frozen. *)
        let free =
          List.sort_uniq compare
            (Params.slot_param_indices to_schema slot
            @ Sizing_transfer.new_dims ~from_schema ~to_schema)
        in
        let sized =
          if free = [] then begin
            incr n_sims;
            match Perf.evaluate candidate ~sizing:start_phys ~cl_f with
            | Some p -> Some (start_phys, p)
            | None -> None
          end
          else begin
            let result =
              Sizing.optimize ~config:sizing_config
                ~start:(Params.normalize to_schema start_phys)
                ~free_dims:free ~rng ~spec candidate
            in
            n_sims := !n_sims + result.Sizing.n_sims;
            Option.map
              (fun (o : Sizing.outcome) -> (o.Sizing.sizing, o.Sizing.perf))
              (Sizing.best result)
          end
        in
        let achieved = Option.map snd sized in
        let move =
          { slot; from_sub = Topology.get topology slot; to_sub = sub;
            predicted_metric = predicted; achieved }
        in
        (match sized with
        | Some (s, p) when Perf.satisfies p spec ->
          (List.rev (move :: moves), Some (candidate, s, p))
        | Some _ | None -> attempt (move :: moves) (budget - 1) rest)
    in
    let moves, refined = attempt [] max_moves alternatives in
    {
      original_perf;
      critical_metric = Some metric_name;
      refined;
      moves;
      n_sims = !n_sims;
    }
