module Rng = Into_util.Rng
module Topology = Into_circuit.Topology
module Spec = Into_circuit.Spec
module Wl = Into_graph.Wl
module Wl_gp = Into_gp.Wl_gp
module Gp = Into_gp.Gp

type config = {
  n_init : int;
  iterations : int;
  pool : int;
  strategy : Candidates.strategy;
  wei_w : float;
  n_best_seeds : int;
  refit_every : int;
  h_candidates : int list;
  sizing : Sizing.config;
  runner : Evaluator.runner;
}

let default_config strategy =
  {
    n_init = 10;
    iterations = 50;
    pool = 200;
    strategy;
    wei_w = 0.5;
    n_best_seeds = 5;
    refit_every = 5;
    h_candidates = Wl_gp.default_h_candidates;
    sizing = Sizing.default_config;
    runner = Evaluator.serial_runner;
  }

type step = {
  iteration : int;
  evaluation : Evaluator.evaluation option;
  rejection : Into_analysis.Diagnostic.t list;
  failure : Fail.t option;
  cumulative_sims : int;
  best_fom_so_far : float option;
}

type result = {
  steps : step list;
  best : Evaluator.evaluation option;
  models : (string * Wl_gp.t) list;
  dict : Wl.dict;
  total_sims : int;
  rejections : int;
}

let model_names = List.map (fun m -> m.Objective.name) Objective.metrics @ [ "fom" ]

let model_targets ~spec (evals : Evaluator.evaluation list) =
  let n_metrics = List.length Objective.metrics in
  List.mapi
    (fun m name ->
      let y =
        if m < n_metrics then
          Array.of_list
            (List.map (fun (e : Evaluator.evaluation) -> (Objective.metric_values e.perf).(m)) evals)
        else
          Array.of_list
            (List.map
               (fun (e : Evaluator.evaluation) ->
                 Objective.penalized_fom_value e.perf spec ~cl_f:spec.Spec.cl_f)
               evals)
      in
      (name, y))
    model_names

(* Only finite observations may reach a GP: a single NaN target corrupts
   the whole Cholesky factorization, silently.  The evaluator already
   guarantees finite perf records, so this is the last line of defense. *)
let trainable ~spec (e : Evaluator.evaluation) =
  Into_circuit.Perf.is_finite e.perf
  && Float.is_finite (Objective.penalized_fom_value e.perf spec ~cl_f:spec.Spec.cl_f)

let fit_metric_models ~dict ~spec evals =
  let evals = List.filter (trainable ~spec) evals in
  if List.length evals < 2 then []
  else
    let graphs =
      Array.of_list
        (List.map (fun (e : Evaluator.evaluation) -> Into_graph.Circuit_graph.build e.topology) evals)
    in
    List.map
      (fun (name, y) -> (name, Wl_gp.fit ~dict ~graphs ~y ()))
      (model_targets ~spec evals)

type state = {
  cfg : config;
  rng : Rng.t;
  spec : Spec.t;
  dict : Wl.dict;
  visited : (int, unit) Hashtbl.t;
  mutable evals : Evaluator.evaluation list;  (** chronological *)
  mutable steps : step list;  (** reverse chronological *)
  mutable total_sims : int;
  mutable rejections : int;
  mutable best : (Evaluator.evaluation * float) option;
  mutable hyper : (string * (int * float * float)) list;  (** per-model (h, noise, signal) *)
}

let record_step st ~iteration ~evaluation ~rejection ~failure ~n_sims =
  st.total_sims <- st.total_sims + n_sims;
  (match evaluation with
  | Some (e : Evaluator.evaluation) ->
    st.evals <- st.evals @ [ e ];
    if e.feasible then begin
      match st.best with
      | Some (_, f) when f >= e.fom -> ()
      | Some _ | None -> st.best <- Some (e, e.fom)
    end
  | None -> ());
  st.steps <-
    {
      iteration;
      evaluation;
      rejection;
      failure;
      cumulative_sims = st.total_sims;
      best_fom_so_far = Option.map snd st.best;
    }
    :: st.steps

let record_outcome st ~iteration outcome =
  match outcome with
  | Evaluator.Evaluated e ->
    record_step st ~iteration ~evaluation:(Some e) ~rejection:[] ~failure:None
      ~n_sims:e.n_sims
  | Evaluator.Rejected diags ->
    st.rejections <- st.rejections + 1;
    record_step st ~iteration ~evaluation:None ~rejection:diags ~failure:None ~n_sims:0
  | Evaluator.Failed reason ->
    let n_sims = Evaluator.sims_of_failed_evaluation ~sizing_config:st.cfg.sizing in
    record_step st ~iteration ~evaluation:None ~rejection:[] ~failure:(Some reason)
      ~n_sims

(* The task seed is drawn from the run's stream before the evaluation is
   scheduled, so the stream advances identically whether the outcome is
   computed here, on another domain, or replayed from the cache. *)
let task_of st topo =
  Hashtbl.replace st.visited (Topology.to_index topo) ();
  Evaluator.task ~spec:st.spec ~sizing_config:st.cfg.sizing
    ~seed:(Evaluator.fresh_seed st.rng) topo

let evaluate_topology st ~iteration topo =
  record_outcome st ~iteration (st.cfg.runner.Evaluator.run_one (task_of st topo))

let fit_models st ~full_search =
  let evals = List.filter (trainable ~spec:st.spec) st.evals in
  let graphs =
    Array.of_list
      (List.map (fun (e : Evaluator.evaluation) -> Into_graph.Circuit_graph.build e.topology) evals)
  in
  let fit (name, y) =
    let full () =
      Wl_gp.fit ~h_candidates:st.cfg.h_candidates ~dict:st.dict ~graphs ~y ()
    in
    let model =
      if full_search then full ()
      else
        match List.assoc_opt name st.hyper with
        | Some (h, noise, signal) ->
          Wl_gp.fit ~h_candidates:[ h ] ~noise_candidates:[ noise ]
            ~signal_candidates:[ signal ] ~dict:st.dict ~graphs ~y ()
        | None -> full ()
    in
    st.hyper <-
      (name, (Wl_gp.h model, Gp.noise (Wl_gp.gp model), Gp.signal (Wl_gp.gp model)))
      :: List.remove_assoc name st.hyper;
    (name, model)
  in
  List.map fit (model_targets ~spec:st.spec evals)

(* Current best topologies used as mutation seeds: feasible designs ranked
   by FoM, padded with low-violation infeasible ones. *)
let best_seeds st =
  let feasible, infeasible =
    List.partition (fun (e : Evaluator.evaluation) -> e.feasible) st.evals
  in
  let by_fom =
    List.sort
      (fun (a : Evaluator.evaluation) (b : Evaluator.evaluation) -> compare b.fom a.fom)
      feasible
  in
  let by_violation =
    List.sort
      (fun (a : Evaluator.evaluation) (b : Evaluator.evaluation) ->
        compare
          (Into_circuit.Perf.violation a.perf st.spec)
          (Into_circuit.Perf.violation b.perf st.spec))
      infeasible
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  List.map
    (fun (e : Evaluator.evaluation) -> e.topology)
    (take st.cfg.n_best_seeds (by_fom @ by_violation))

let acquisition st models best_tfom topo =
  let g = Into_graph.Circuit_graph.build topo in
  let feas =
    List.map2
      (fun m (bound, sense) ->
        let mean, var = Wl_gp.predict (List.assoc m.Objective.name models) g in
        Acquisition.probability_feasible ~mean ~std:(sqrt var) ~bound ~sense)
      Objective.metrics (Objective.bounds st.spec)
  in
  match best_tfom with
  | None -> Acquisition.feasibility_only feas
  | Some best ->
    let mean, var = Wl_gp.predict (List.assoc "fom" models) g in
    let ei = Acquisition.expected_improvement ~mean ~std:(sqrt var) ~best in
    Acquisition.weighted_ei ~w:st.cfg.wei_w ~ei ~feasibility:feas

let bo_iteration st ~iteration =
  let candidates =
    Candidates.generate ~rng:st.rng ~strategy:st.cfg.strategy ~pool:st.cfg.pool
      ~best:(best_seeds st)
      ~visited:(fun t -> Hashtbl.mem st.visited (Topology.to_index t))
  in
  match candidates with
  | [] -> ()
  | first :: _ ->
    if List.length (List.filter (trainable ~spec:st.spec) st.evals) < 2 then
      evaluate_topology st ~iteration first
    else begin
      let full_search = iteration mod st.cfg.refit_every = 1 || st.hyper = [] in
      let models = fit_models st ~full_search in
      let best_tfom =
        Option.map
          (fun ((e : Evaluator.evaluation), _) ->
            Objective.penalized_fom_value e.perf st.spec ~cl_f:st.spec.Spec.cl_f)
          st.best
      in
      let scored =
        List.map (fun t -> (t, acquisition st models best_tfom t)) candidates
      in
      let chosen, _ =
        List.fold_left
          (fun (bt, ba) (t, a) -> if a > ba then (t, a) else (bt, ba))
          (first, Float.neg_infinity) scored
      in
      evaluate_topology st ~iteration chosen
    end

let run ?config ~rng ~spec () =
  let cfg = match config with Some c -> c | None -> default_config Candidates.Mixed in
  let st =
    {
      cfg;
      rng;
      spec;
      dict = Wl.create_dict ();
      visited = Hashtbl.create 256;
      evals = [];
      steps = [];
      total_sims = 0;
      rejections = 0;
      best = None;
      hyper = [];
    }
  in
  (* Line 1 of Algorithm 1: random initial dataset.  The initial topologies
     are drawn (and their task seeds fixed) up front, so the independent
     evaluations can run as one batch — in parallel under a pooled runner,
     with results recorded in draw order either way. *)
  let init_tasks = ref [] in
  let init = ref 0 in
  let guard = ref 0 in
  while !init < cfg.n_init && !guard < 100 * cfg.n_init do
    incr guard;
    let t = Topology.random st.rng in
    if not (Hashtbl.mem st.visited (Topology.to_index t)) then begin
      incr init;
      init_tasks := task_of st t :: !init_tasks
    end
  done;
  let init_outcomes =
    cfg.runner.Evaluator.run_batch (Array.of_list (List.rev !init_tasks))
  in
  Array.iter (record_outcome st ~iteration:0) init_outcomes;
  for iteration = 1 to cfg.iterations do
    bo_iteration st ~iteration
  done;
  let models = fit_metric_models ~dict:st.dict ~spec st.evals in
  {
    steps = List.rev st.steps;
    best = Option.map fst st.best;
    models;
    dict = st.dict;
    total_sims = st.total_sims;
    rejections = st.rejections;
  }
