type t =
  | Singular
  | No_convergence
  | Non_finite of string
  | Timeout
  | Worker_crash
  | Cache_corrupt
  | Other of string

let class_name = function
  | Singular -> "singular"
  | No_convergence -> "no-convergence"
  | Non_finite _ -> "non-finite"
  | Timeout -> "timeout"
  | Worker_crash -> "worker-crash"
  | Cache_corrupt -> "cache-corrupt"
  | Other _ -> "other"

let all_class_names =
  [
    "singular";
    "no-convergence";
    "non-finite";
    "timeout";
    "worker-crash";
    "cache-corrupt";
    "other";
  ]

let class_index = function
  | Singular -> 0
  | No_convergence -> 1
  | Non_finite _ -> 2
  | Timeout -> 3
  | Worker_crash -> 4
  | Cache_corrupt -> 5
  | Other _ -> 6

let to_string = function
  | Non_finite what -> Printf.sprintf "non-finite (%s)" what
  | Other reason -> "other: " ^ reason
  | f -> class_name f

let environmental = function
  | Timeout | Worker_crash | Cache_corrupt -> true
  | Singular | No_convergence | Non_finite _ | Other _ -> false
