(** Typed failure taxonomy for behavior-level evaluation.

    Every way an evaluation can fail is classified into one of these
    constructors, threaded from the circuit solvers ([Mna.Singular],
    [Eig.No_convergence], non-finite metric leaks) through [Sizing] and
    [Evaluator] up to the runtime supervisor and the campaign reports.
    Classifying failures — instead of collapsing them into a string or a
    silent [None] — is what lets the retry policy distinguish a task worth
    re-seeding from one worth re-running unchanged, and lets reports show
    {e what kind} of degradation a campaign absorbed. *)

type t =
  | Singular  (** a solve hit a numerically singular system *)
  | No_convergence  (** the eigensolver failed to deflate *)
  | Non_finite of string
      (** a NaN/inf leaked into the named metric or target *)
  | Timeout  (** the per-task deadline expired before any usable result *)
  | Worker_crash  (** the evaluation raised an unexpected exception *)
  | Cache_corrupt  (** a persistent cache entry failed validation *)
  | Other of string  (** anything else, with a human-readable reason *)

val class_name : t -> string
(** Canonical payload-free class label: ["singular"], ["no-convergence"],
    ["non-finite"], ["timeout"], ["worker-crash"], ["cache-corrupt"],
    ["other"].  Ledger keys and report rows group by this. *)

val all_class_names : string list
(** The seven class labels in canonical (declaration) order. *)

val class_index : t -> int
(** Position of the class in {!all_class_names} (dense, 0-based) — lets a
    ledger hold one atomic counter per class. *)

val to_string : t -> string
(** Human-readable form: the class name, plus the payload when the
    constructor carries one (e.g. ["non-finite (gbw_hz)"]). *)

val environmental : t -> bool
(** Environmental classes ([Timeout], [Worker_crash], [Cache_corrupt]) are
    transient: the computation itself is presumed sound, so a retry re-runs
    the {e same} task after an exponential backoff.  Numerical classes
    ([Singular], [No_convergence], [Non_finite], [Other]) are deterministic
    functions of the task seed: a retry only makes sense with a derived
    seed, and backs off not at all. *)
