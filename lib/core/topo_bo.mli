(** WL-kernel Bayesian optimization over the topology space — Algorithm 1.

    Each iteration: generate a candidate pool (mutation + random sampling,
    minus visited topologies), score it with the wEI acquisition backed by
    one WL-GP per performance metric plus one for the FoM, evaluate the
    winner with the inner sizing BO, and update the surrogates.  The final
    surrogate models are returned for the interpretability analyses. *)

type config = {
  n_init : int;  (** random initial topologies (paper: 10) *)
  iterations : int;  (** BO iterations (paper: 50) *)
  pool : int;  (** candidate pool size (paper: 200) *)
  strategy : Candidates.strategy;
  wei_w : float;
  n_best_seeds : int;  (** current-best topologies fed to mutation *)
  refit_every : int;  (** hyperparameter re-selection period *)
  h_candidates : int list;
      (** WL iteration counts the MLE may select from (ablation knob;
          default [0; 1; 2; 3]) *)
  sizing : Sizing.config;
  runner : Evaluator.runner;
      (** executes the evaluation tasks (default {!Evaluator.serial_runner};
          [Into_runtime.Exec.runner] adds caching and domain parallelism).
          Results are independent of the runner: every task carries its own
          seed, drawn from the run's stream at scheduling time. *)
}

val default_config : Candidates.strategy -> config

type step = {
  iteration : int;  (** 0 during initialization, then 1..T *)
  evaluation : Evaluator.evaluation option;  (** [None]: dead topology *)
  rejection : Into_analysis.Diagnostic.t list;
      (** non-empty iff the static verification gate rejected the candidate
          (then [evaluation = None] and the step cost no simulations) *)
  failure : Fail.t option;
      (** why every sizing attempt failed, when the evaluator reported
          [Failed] (then [evaluation = None] but the budget was spent) *)
  cumulative_sims : int;
  best_fom_so_far : float option;  (** best feasible FoM after this step *)
}

type result = {
  steps : step list;  (** chronological *)
  best : Evaluator.evaluation option;  (** best feasible evaluation *)
  models : (string * Into_gp.Wl_gp.t) list;
      (** final surrogates: ["gain"; "gbw"; "pm"; "power"; "fom"] (missing
          when fewer than two topologies were evaluated) *)
  dict : Into_graph.Wl.dict;
  total_sims : int;
  rejections : int;  (** candidates rejected by the static gate *)
}

val run : ?config:config -> rng:Into_util.Rng.t -> spec:Into_circuit.Spec.t -> unit -> result

val fit_metric_models :
  dict:Into_graph.Wl.dict ->
  spec:Into_circuit.Spec.t ->
  Evaluator.evaluation list ->
  (string * Into_gp.Wl_gp.t) list
(** Train the five surrogates on an arbitrary evaluation set (full
    hyperparameter search).  Used by {!run}, by the refinement experiment
    and by tests. *)
