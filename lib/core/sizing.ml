module Rng = Into_util.Rng
module Params = Into_circuit.Params
module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec
module Topology = Into_circuit.Topology
module Gp = Into_gp.Gp
module Rbf = Into_gp.Rbf

type config = {
  n_init : int;
  n_iter : int;
  n_candidates : int;
  wei_w : float;
  refit_every : int;
  deadline_s : float option;
}

let default_config =
  {
    n_init = 10;
    n_iter = 30;
    n_candidates = 60;
    wei_w = 0.5;
    refit_every = 5;
    deadline_s = None;
  }

type outcome = { sizing : float array; perf : Perf.t }

type result = {
  best_feasible : outcome option;
  best_any : outcome option;
  n_sims : int;
  failures : (Fail.t * int) list;
  timed_out : bool;
}

let best r = match r.best_feasible with Some _ as b -> b | None -> r.best_any

type observation = { point : float array; tmetrics : float array; tfom : float; perf : Perf.t }

type state = {
  cfg : config;
  rng : Rng.t;
  spec : Spec.t;
  topo : Topology.t;
  schema : Params.schema;
  free_dims : int array;
  base : float array;  (** values of the frozen coordinates *)
  mutable obs : observation list;
  mutable n_sims : int;
  mutable best_feasible : (outcome * float) option;  (** with FoM *)
  mutable best_any : (outcome * float) option;  (** with violation *)
  mutable lengthscales : float array;  (** per GP: 4 metrics + objective *)
  mutable noises : float array;
  mutable failures : (Fail.t * int) list;  (** first-seen order *)
  mutable timed_out : bool;
  deadline : float option;  (** absolute wall-clock limit, [Unix.gettimeofday] frame *)
}

let n_models = List.length Objective.metrics + 1

(* Fill the frozen coordinates of a candidate from the base point. *)
let complete st u =
  let full = Array.copy st.base in
  Array.iteri (fun k d -> full.(d) <- u.(k)) st.free_dims;
  full

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let random_candidate st = Array.init (Array.length st.free_dims) (fun _ -> Rng.float st.rng)

let local_candidate st center =
  Array.map (fun x -> clamp01 (x +. (0.1 *. Rng.gaussian st.rng))) center

let record_failure st f =
  let rec bump = function
    | [] -> [ (f, 1) ]
    | (g, n) :: rest when g = f -> (g, n + 1) :: rest
    | pair :: rest -> pair :: bump rest
  in
  st.failures <- bump st.failures

(* Checked after every simulation: the budget loops stop scheduling work
   once the wall-clock deadline passes.  Cooperative — a single simulation
   is never interrupted mid-solve, so the overshoot is bounded by one
   evaluation. *)
let expired st =
  match st.deadline with
  | None -> false
  | Some limit ->
    if st.timed_out then true
    else if Unix.gettimeofday () > limit then begin
      st.timed_out <- true;
      true
    end
    else false

let evaluate st u =
  let full = complete st u in
  let sizing = Params.denormalize st.schema full in
  st.n_sims <- st.n_sims + 1;
  match Perf.evaluate_checked st.topo ~sizing ~cl_f:st.spec.Spec.cl_f with
  | exception exn ->
    record_failure st (Fail.Other (Printexc.to_string exn));
    None
  | Error e ->
    record_failure st
      (match e with
      | `Singular -> Fail.Singular
      | `No_convergence -> Fail.No_convergence
      | `Non_finite field -> Fail.Non_finite field);
    None
  | Ok perf ->
    let o = { sizing; perf } in
    let fom = Perf.fom perf ~cl_f:st.spec.Spec.cl_f in
    if Perf.satisfies perf st.spec then begin
      match st.best_feasible with
      | Some (_, best_fom) when best_fom >= fom -> ()
      | Some _ | None -> st.best_feasible <- Some (o, fom)
    end;
    let viol = Perf.violation perf st.spec in
    (match st.best_any with
    | Some (_, best_viol) when best_viol <= viol -> ()
    | Some _ | None -> st.best_any <- Some (o, viol));
    let ob =
      {
        point = u;
        tmetrics = Objective.metric_values perf;
        tfom = Objective.penalized_fom_value perf st.spec ~cl_f:st.spec.Spec.cl_f;
        perf;
      }
    in
    st.obs <- ob :: st.obs;
    Some ob

let lengthscale_grid d = List.map (fun l -> l *. sqrt (float_of_int (max d 1))) [ 0.1; 0.25; 0.5; 1.0 ]
let noise_grid = [ 1e-4; 1e-2 ]

let targets st =
  let obs = Array.of_list st.obs in
  let ys =
    Array.init n_models (fun m ->
        if m < n_models - 1 then Array.map (fun o -> o.tmetrics.(m)) obs
        else Array.map (fun o -> o.tfom) obs)
  in
  (Array.map (fun o -> o.point) obs, ys)

(* Select (lengthscale, noise) per model by marginal likelihood. *)
let refit_hyperparameters st =
  let xs, ys = targets st in
  let d = Array.length st.free_dims in
  for m = 0 to n_models - 1 do
    let best = ref None in
    List.iter
      (fun l ->
        let gram = Rbf.gram ~lengthscale:l xs in
        List.iter
          (fun noise ->
            match Gp.fit ~gram ~y:ys.(m) ~signal:1.0 ~noise with
            | gp -> (
              let lml = Gp.log_marginal_likelihood gp in
              match !best with
              | Some (_, _, best_lml) when best_lml >= lml -> ()
              | Some _ | None -> best := Some (l, noise, lml))
            | exception Into_linalg.Cholesky.Not_positive_definite -> ())
          noise_grid)
      (lengthscale_grid d);
    match !best with
    | Some (l, noise, _) ->
      st.lengthscales.(m) <- l;
      st.noises.(m) <- noise
    | None -> ()
  done

let fit_models st =
  let xs, ys = targets st in
  let models =
    Array.init n_models (fun m ->
        let gram = Rbf.gram ~lengthscale:st.lengthscales.(m) xs in
        match Gp.fit ~gram ~y:ys.(m) ~signal:1.0 ~noise:st.noises.(m) with
        | gp -> Some gp
        | exception Into_linalg.Cholesky.Not_positive_definite -> None)
  in
  (xs, models)

let acquisition st (xs, models) best_tfom u =
  let predict m =
    match models.(m) with
    | None -> None
    | Some gp ->
      let k_star = Rbf.cross ~lengthscale:st.lengthscales.(m) xs u in
      Some (Gp.predict gp ~k_star ~k_self:1.0)
  in
  let feas =
    List.mapi
      (fun m (bound, sense) ->
        match predict m with
        | None -> 1.0
        | Some (mean, var) ->
          Acquisition.probability_feasible ~mean ~std:(sqrt var) ~bound ~sense)
      (Objective.bounds st.spec)
  in
  match best_tfom with
  | None -> Acquisition.feasibility_only feas
  | Some best -> (
    match predict (n_models - 1) with
    | None -> Acquisition.feasibility_only feas
    | Some (mean, var) ->
      let ei = Acquisition.expected_improvement ~mean ~std:(sqrt var) ~best in
      Acquisition.weighted_ei ~w:st.cfg.wei_w ~ei ~feasibility:feas)

let bo_step st iter =
  if iter mod st.cfg.refit_every = 0 || st.lengthscales.(0) = 0.0 then refit_hyperparameters st;
  let fitted = fit_models st in
  let best_tfom =
    Option.map
      (fun ((o : outcome), _) ->
        Objective.penalized_fom_value o.perf st.spec ~cl_f:st.spec.Spec.cl_f)
      st.best_feasible
  in
  let center =
    match st.best_feasible with
    | Some (o, _) ->
      let full = Params.normalize st.schema o.sizing in
      Some (Array.map (fun d -> full.(d)) st.free_dims)
    | None -> (
      match st.best_any with
      | Some (o, _) ->
        let full = Params.normalize st.schema o.sizing in
        Some (Array.map (fun d -> full.(d)) st.free_dims)
      | None -> None)
  in
  let n = st.cfg.n_candidates in
  let candidate i =
    match center with
    | Some c when i mod 2 = 1 -> local_candidate st c
    | Some _ | None -> random_candidate st
  in
  let best_u = ref None in
  for i = 0 to n - 1 do
    let u = candidate i in
    let a = acquisition st fitted best_tfom u in
    match !best_u with
    | Some (_, best_a) when best_a >= a -> ()
    | Some _ | None -> best_u := Some (u, a)
  done;
  match !best_u with
  | Some (u, _) -> ignore (evaluate st u)
  | None -> ()

let optimize ?(config = default_config) ?start ?free_dims ~rng ~spec topo =
  let schema = Params.schema topo in
  let d = Params.dim schema in
  let base =
    match start with
    | Some s ->
      if Array.length s <> d then invalid_arg "Sizing.optimize: start dimension mismatch";
      Array.map clamp01 s
    | None -> Params.default_point schema
  in
  let free =
    match free_dims with
    | Some l ->
      List.iter (fun i -> if i < 0 || i >= d then invalid_arg "Sizing.optimize: bad free dim") l;
      Array.of_list (List.sort_uniq compare l)
    | None -> Array.init d (fun i -> i)
  in
  let st =
    {
      cfg = config;
      rng;
      spec;
      topo;
      schema;
      free_dims = free;
      base;
      obs = [];
      n_sims = 0;
      best_feasible = None;
      best_any = None;
      lengthscales = Array.make n_models 0.0;
      noises = Array.make n_models 1e-2;
      failures = [];
      timed_out = false;
      deadline =
        Option.map (fun s -> Unix.gettimeofday () +. s) config.deadline_s;
    }
  in
  (* Initial design: the start point (when provided) plus random points. *)
  if start <> None && not (expired st) then
    ignore (evaluate st (Array.map (fun i -> base.(i)) free));
  let n_random_init = config.n_init - if start = None then 0 else 1 in
  for _ = 1 to max 0 n_random_init do
    if not (expired st) then ignore (evaluate st (random_candidate st))
  done;
  for iter = 0 to config.n_iter - 1 do
    if not (expired st) then
      if st.obs <> [] then bo_step st iter
      else ignore (evaluate st (random_candidate st))
  done;
  {
    best_feasible = Option.map fst st.best_feasible;
    best_any = Option.map fst st.best_any;
    n_sims = st.n_sims;
    failures = st.failures;
    timed_out = st.timed_out;
  }
