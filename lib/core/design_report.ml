module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec

let metric_line models topo name =
  match List.assoc_opt name models with
  | None -> Printf.sprintf "  %-5s (no surrogate)" name
  | Some model ->
    let grads = Attribution.slot_gradients model topo in
    Printf.sprintf "  %-5s %s" name
      (String.concat "  "
         (List.map
            (fun (r : Attribution.slot_report) ->
              Printf.sprintf "%s[%s]=%+.3f"
                (Topology.slot_name r.Attribution.slot)
                (Subcircuit.to_string r.Attribution.subcircuit)
                r.Attribution.gradient)
            grads))

let sensitivity_section topo ~sizing ~cl_f =
  let deltas = Sensitivity.analyze topo ~sizing ~cl_f in
  if deltas = [] then "  (no variable subcircuit to remove)"
  else
    String.concat "\n"
      (List.map
         (fun (d : Sensitivity.delta) ->
           let fmt f u =
             match f d with Some v -> Printf.sprintf "%+.3g%s" v u | None -> "fails"
           in
           Printf.sprintf "  without %s[%s]: dGBW=%s dPM=%s dGain=%s"
             (Topology.slot_name d.Sensitivity.slot)
             (Subcircuit.to_string d.Sensitivity.removed)
             (fmt (fun x -> Option.map (fun v -> v /. 1e6) (Sensitivity.d_gbw_hz x)) "MHz")
             (fmt Sensitivity.d_pm_deg "deg")
             (fmt Sensitivity.d_gain_db "dB"))
         deltas)

let outcome_summary ~cl_f = function
  | Evaluator.Evaluated (e : Evaluator.evaluation) ->
    Printf.sprintf "evaluated: %s  feasible=%b  (%d simulations)"
      (Perf.to_string e.perf ~cl_f) e.feasible e.n_sims
  | Evaluator.Rejected diags ->
    "rejected by the static verification gate:\n"
    ^ String.concat "\n"
        (List.map
           (fun d -> "  " ^ Into_analysis.Diagnostic.to_string d)
           (Into_analysis.Diagnostic.by_severity diags))
  | Evaluator.Failed f -> "failed: " ^ Fail.to_string f

let render ~models ~spec ~sizing topo =
  let cl_f = spec.Spec.cl_f in
  let perf =
    match Perf.evaluate topo ~sizing ~cl_f with
    | Some p -> p
    | None -> invalid_arg "Design_report.render: design does not simulate"
  in
  let netlist = Into_circuit.Netlist.build topo ~sizing ~cl_f in
  let pz = Into_circuit.Poles_zeros.analyze netlist in
  let top_structures =
    match List.assoc_opt "fom" models with
    | None -> "  (no FoM surrogate)"
    | Some model ->
      String.concat "\n"
        (List.map
           (fun (desc, g) -> Printf.sprintf "  %+.4f  %s" g desc)
           (Attribution.top_features model topo ~n:5))
  in
  String.concat "\n"
    [
      "=== design report ===";
      "topology: " ^ Topology.to_string topo;
      "spec:     " ^ Spec.to_string spec;
      Printf.sprintf "measured: %s  (meets spec: %b)" (Perf.to_string perf ~cl_f)
        (Perf.satisfies perf spec);
      "";
      "slot gradients (d metric / d structure count, WL-GP Eq. 5):";
      String.concat "\n"
        (List.map (metric_line models topo) [ "gain"; "gbw"; "pm"; "power" ]);
      "";
      "most FoM-critical structures:";
      top_structures;
      "";
      "pole/zero constellation:";
      Into_circuit.Poles_zeros.describe pz;
      Printf.sprintf "open-loop stable: %b" (Into_circuit.Poles_zeros.is_stable pz);
      "";
      "remove-and-resimulate sensitivity:";
      sensitivity_section topo ~sizing ~cl_f;
    ]
