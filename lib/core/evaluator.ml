module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec
module Params = Into_circuit.Params
module Netlist = Into_circuit.Netlist
module Diagnostic = Into_analysis.Diagnostic

type evaluation = {
  topology : Into_circuit.Topology.t;
  sizing : float array;
  perf : Perf.t;
  feasible : bool;
  fom : float;
  n_sims : int;
}

type outcome =
  | Evaluated of evaluation
  | Rejected of Diagnostic.t list
  | Failed of Fail.t

let static_diagnostics ~spec topo =
  let topo_diags = Into_analysis.Topology_lint.check topo in
  let netlist_diags =
    match
      let schema = Params.schema topo in
      let sizing = Params.denormalize schema (Params.default_point schema) in
      Netlist.build topo ~sizing ~cl_f:spec.Spec.cl_f
    with
    | nl -> Into_analysis.Netlist_lint.check nl
    | exception exn ->
      [ Diagnostic.make Diagnostic.Build_failure
          (Printf.sprintf "netlist expansion raised %s" (Printexc.to_string exn)) ]
  in
  topo_diags @ netlist_diags

let evaluate_gated ?(sizing_config = Sizing.default_config) ~rng ~spec topo =
  match Diagnostic.errors (static_diagnostics ~spec topo) with
  | _ :: _ as errors -> Rejected errors
  | [] -> (
    let result = Sizing.optimize ~config:sizing_config ~rng ~spec topo in
    match Sizing.best result with
    | None ->
      (* Classify the all-attempts-failed outcome.  A deadline expiry wins
         outright (the run was cut short, whatever the simulations did);
         otherwise the strictly dominant failure class from the sizing loop,
         with ties resolved to the first class seen. *)
      let dominant =
        if result.Sizing.timed_out then Fail.Timeout
        else
          match result.Sizing.failures with
          | [] ->
            Fail.Other
              (Printf.sprintf
                 "all %d sizing attempts (%d init + %d BO) failed behavioral simulation"
                 (sizing_config.Sizing.n_init + sizing_config.Sizing.n_iter)
                 sizing_config.Sizing.n_init sizing_config.Sizing.n_iter)
          | (f0, n0) :: rest ->
            fst
              (List.fold_left
                 (fun (best, best_n) (f, n) ->
                   if n > best_n then (f, n) else (best, best_n))
                 (f0, n0) rest)
      in
      Failed dominant
    | Some o ->
      Evaluated
        {
          topology = topo;
          sizing = o.Sizing.sizing;
          perf = o.Sizing.perf;
          feasible = Perf.satisfies o.Sizing.perf spec;
          fom = Perf.fom o.Sizing.perf ~cl_f:spec.Spec.cl_f;
          n_sims = result.Sizing.n_sims;
        })

let evaluate ?sizing_config ~rng ~spec topo =
  match evaluate_gated ?sizing_config ~rng ~spec topo with
  | Evaluated e -> Some e
  | Rejected _ | Failed _ -> None

let sims_of_failed_evaluation ~sizing_config =
  sizing_config.Sizing.n_init + sizing_config.Sizing.n_iter

let sims_of_outcome ~sizing_config = function
  | Evaluated e -> e.n_sims
  | Rejected _ -> 0
  | Failed _ -> sims_of_failed_evaluation ~sizing_config

type task = {
  task_topology : Into_circuit.Topology.t;
  task_spec : Spec.t;
  task_sizing : Sizing.config;
  task_seed : int;
}

let task ~spec ~sizing_config ~seed topo =
  { task_topology = topo; task_spec = spec; task_sizing = sizing_config; task_seed = seed }

let fresh_seed rng = Into_util.Rng.int rng max_int

let run_task t =
  let rng = Into_util.Rng.create ~seed:t.task_seed in
  evaluate_gated ~sizing_config:t.task_sizing ~rng ~spec:t.task_spec t.task_topology

type runner = {
  run_one : task -> outcome;
  run_batch : task array -> outcome array;
}

let serial_runner = { run_one = run_task; run_batch = Array.map run_task }
