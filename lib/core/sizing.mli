(** Continuous parameter sizing of one topology via constrained Bayesian
    optimization (the automated-sizing method [1] the paper relies on).

    The optimizer works on the normalized cube [0,1]^d of the topology's
    parameter schema: 10 random initial points, then 30 BO iterations with
    one RBF-GP per constrained metric plus one for the FoM objective, and
    the wEI acquisition maximized over a random + local candidate set.
    Every circuit simulation (including failed ones) counts toward the
    simulation budget reported by the experiments. *)

type config = {
  n_init : int;
  n_iter : int;
  n_candidates : int;  (** acquisition candidates per iteration *)
  wei_w : float;
  refit_every : int;  (** hyperparameter re-selection period *)
  deadline_s : float option;
      (** wall-clock budget for the whole sizing run.  Checked cooperatively
          between simulations (a running solve is never interrupted), so the
          overshoot is bounded by one evaluation.  [None] disables the check
          entirely — the default, and the only fully deterministic mode. *)
}

val default_config : config
(** 10 init, 30 iterations, 60 candidates, w = 0.5, refit every 5,
    no deadline. *)

type outcome = { sizing : float array (** physical values *); perf : Into_circuit.Perf.t }

type result = {
  best_feasible : outcome option;  (** highest-FoM spec-satisfying point *)
  best_any : outcome option;  (** minimum-constraint-violation point *)
  n_sims : int;
  failures : (Fail.t * int) list;
      (** per-failure counts of simulations that produced no usable
          performance record, in first-seen order *)
  timed_out : bool;  (** the deadline expired before the budget ran out *)
}

val best : result -> outcome option
(** [best_feasible] when present, otherwise [best_any]. *)

val optimize :
  ?config:config ->
  ?start:float array ->
  ?free_dims:int list ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  Into_circuit.Topology.t ->
  result
(** [optimize ~rng ~spec topo] sizes [topo] for [spec].

    [start] (normalized) seeds the search and is evaluated first.
    [free_dims] restricts the search to the given coordinates, keeping the
    others fixed at [start] — this implements the "resize only the modified
    circuit part" step of topology refinement. *)
