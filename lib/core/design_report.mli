(** Designer-facing report for a synthesized or refined op-amp.

    Ties the interpretability machinery together into the artifact a human
    reviewer reads before trusting an automatically generated topology:
    measured performance, the WL-GP gradient attribution per metric and
    variable subcircuit, the most influential structural features, the
    exact pole/zero constellation and the remove-and-resimulate deltas. *)

val outcome_summary : cl_f:float -> Evaluator.outcome -> string
(** One evaluation outcome for human eyes: the measured performance of an
    evaluated design, the ordered diagnostics of a rejected one, or the
    recorded reason when every sizing attempt failed. *)

val render :
  models:(string * Into_gp.Wl_gp.t) list ->
  spec:Into_circuit.Spec.t ->
  sizing:float array ->
  Into_circuit.Topology.t ->
  string
(** Multi-line report.  Surrogate sections degrade gracefully when a model
    is missing; the simulation sections require the design to simulate.
    @raise Invalid_argument when the baseline simulation fails. *)
