(** Stable content hashing for cache keys.

    FNV-1a over the key's canonical string form.  64-bit, deterministic
    across processes and OCaml versions — unlike [Hashtbl.hash], which only
    promises stability within one runtime. *)

val fnv1a64 : string -> int64
(** FNV-1a with the standard 64-bit offset basis and prime. *)

val hex : string -> string
(** 16-character lowercase hex digest of {!fnv1a64}, suitable as a file
    name. *)
