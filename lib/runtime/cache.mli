(** Persistent on-disk store of evaluation outcomes.

    One file per entry under a cache directory, named by the
    {!Content_hash.hex} of the task's canonical key.  Each entry holds two
    marshalled values: a scalar-only header (magic string, format version,
    full key) followed by the outcome.  The header is always memory-safe to
    decode regardless of which format version wrote the file, and the
    outcome is only unmarshalled after the header validates — so hash
    collisions, truncated writes, and stale formats are all detected on
    load and answered with a recompute; a cache read never raises.  Safe
    for concurrent writers: entries land via atomic rename and the store is
    append-only (same key always maps to the same outcome, so
    last-write-wins races are benign). *)

type t

val version : int
(** Bumped whenever the key derivation or the marshalled payload layout
    changes; older entries are then treated as misses. *)

val create : dir:string -> t
(** Open (creating if needed) the store rooted at [dir]. *)

val dir : t -> string

val key_of_task : Into_core.Evaluator.task -> string
(** Canonical textual key: format version, topology index, every spec and
    sizing-config field ([%.17g] for floats, so distinct values never
    alias), and the task seed. *)

val find : t -> key:string -> Into_core.Evaluator.outcome option
(** [None] on miss, on any unreadable/corrupt entry, and on a key whose
    stored envelope does not match exactly (hash collision). *)

val store : t -> key:string -> Into_core.Evaluator.outcome -> unit
(** Best-effort: an unwritable cache directory degrades the cache to a
    no-op rather than failing the evaluation. *)

(** Lifetime counters for this handle (all {!Atomic}, so worker domains
    may share one [t]). *)

val hits : t -> int
val misses : t -> int
val stores : t -> int

val corrupt : t -> int
(** Entries that existed on disk but failed validation. *)

val corrupt_entry : t -> key:string -> bool
(** Deliberately damage the stored entry for [key] in place, so the next
    {!find} detects corruption and recomputes.  Returns false when no entry
    exists.  Exists for the fault-injection harness ([Faultin]) — it
    exercises exactly the recovery path a torn write would. *)
