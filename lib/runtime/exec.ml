module Evaluator = Into_core.Evaluator

type t = {
  n_jobs : int;
  cache : Cache.t option;
  checkpoint : Checkpoint.t option;
  on_event : Progress.event -> unit;
  event_lock : Mutex.t;
  n_computed : int Atomic.t;
  started_at : float;
}

let create ?(jobs = 1) ?cache ?checkpoint ?(on_event = fun _ -> ()) () =
  {
    n_jobs = (if jobs <= 0 then Pool.default_jobs () else jobs);
    cache;
    checkpoint;
    on_event;
    event_lock = Mutex.create ();
    n_computed = Atomic.make 0;
    started_at = Unix.gettimeofday ();
  }

let jobs t = t.n_jobs
let cache t = t.cache
let checkpoint t = t.checkpoint

let emit t event =
  Mutex.lock t.event_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.event_lock) (fun () -> t.on_event event)

let compute t task =
  Atomic.incr t.n_computed;
  Evaluator.run_task task

let evaluate t task =
  match t.cache with
  | None -> compute t task
  | Some cache -> (
    let key = Cache.key_of_task task in
    match Cache.find cache ~key with
    | Some outcome -> outcome
    | None ->
      let outcome = compute t task in
      Cache.store cache ~key outcome;
      outcome)

let runner ?jobs:override t =
  let batch_jobs = match override with Some j -> j | None -> t.n_jobs in
  {
    Evaluator.run_one = evaluate t;
    run_batch = Pool.map ~jobs:batch_jobs (evaluate t);
  }

let computed t = Atomic.get t.n_computed

type stats = {
  workers : int;
  elapsed_s : float;
  n_computed : int;
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  cache_corrupt : int;
  restored_runs : int;
}

let stats t =
  let hits, misses, stores, corrupt =
    match t.cache with
    | None -> (0, 0, 0, 0)
    | Some c -> (Cache.hits c, Cache.misses c, Cache.stores c, Cache.corrupt c)
  in
  {
    workers = t.n_jobs;
    elapsed_s = Unix.gettimeofday () -. t.started_at;
    n_computed = Atomic.get t.n_computed;
    cache_hits = hits;
    cache_misses = misses;
    cache_stores = stores;
    cache_corrupt = corrupt;
    restored_runs = (match t.checkpoint with None -> 0 | Some c -> Checkpoint.restored c);
  }

let summary t =
  let s = stats t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "runtime: %d worker%s, %.1f s wall clock\n" s.workers
       (if s.workers = 1 then "" else "s")
       s.elapsed_s);
  let lookups = s.cache_hits + s.cache_misses in
  let hit_rate = if lookups = 0 then 0.0 else 100.0 *. float_of_int s.cache_hits /. float_of_int lookups in
  Buffer.add_string buf
    (Printf.sprintf "evaluations: %d computed, cache hits: %d (%.1f%% hit rate), %d stored"
       s.n_computed s.cache_hits hit_rate s.cache_stores);
  if s.cache_corrupt > 0 then
    Buffer.add_string buf (Printf.sprintf ", %d corrupt entries recomputed" s.cache_corrupt);
  if s.restored_runs > 0 then
    Buffer.add_string buf (Printf.sprintf "\ncheckpoint: %d runs restored" s.restored_runs);
  Buffer.contents buf
