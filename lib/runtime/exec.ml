module Evaluator = Into_core.Evaluator
module Fail = Into_core.Fail

type t = {
  n_jobs : int;
  cache : Cache.t option;
  checkpoint : Checkpoint.t option;
  on_event : Progress.event -> unit;
  event_lock : Mutex.t;
  n_computed : int Atomic.t;
  started_at : float;
  policy : Supervise.policy;
  chaos : Faultin.t option;
  task_ledger : Supervise.Ledger.t;
}

let create ?(jobs = 1) ?cache ?checkpoint ?(on_event = fun _ -> ())
    ?(supervise = Supervise.default_policy) ?faultin () =
  {
    n_jobs = (if jobs <= 0 then Pool.default_jobs () else jobs);
    cache;
    checkpoint;
    on_event;
    event_lock = Mutex.create ();
    n_computed = Atomic.make 0;
    started_at = Unix.gettimeofday ();
    policy = supervise;
    chaos = faultin;
    task_ledger = Supervise.Ledger.create ();
  }

let jobs t = t.n_jobs
let cache t = t.cache
let checkpoint t = t.checkpoint
let policy t = t.policy
let faultin t = t.chaos
let ledger t = t.task_ledger

let emit t event =
  Mutex.lock t.event_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.event_lock) (fun () -> t.on_event event)

let compute t task =
  Atomic.incr t.n_computed;
  Evaluator.run_task task

(* Cache lookup, then a supervised computation on a miss.  The supervisor
   sits *inside* the cache boundary: only final (post-retry) outcomes are
   stored, keyed by the original task, so a cache replay of a recovered
   task returns the recovered outcome directly. *)
let evaluate t task =
  let key = Cache.key_of_task task in
  let supervised () =
    Supervise.run ?faultin:t.chaos ~ledger:t.task_ledger ~policy:t.policy ~key
      ~compute:(compute t) task
  in
  match t.cache with
  | None -> supervised ()
  | Some cache ->
    (* Chaos: damage this task's stored entry before the lookup, forcing
       the corrupt-detection path.  The recompute below then repairs it. *)
    Option.iter
      (fun fi ->
        if Faultin.decide fi Faultin.Corrupt_cache ~key ~attempt:0 then
          if Cache.corrupt_entry cache ~key then begin
            Faultin.record fi Faultin.Corrupt_cache;
            Supervise.Ledger.count_failure t.task_ledger Fail.Cache_corrupt;
            Supervise.Ledger.count_retry t.task_ledger Fail.Cache_corrupt
          end)
      t.chaos;
    (match Cache.find cache ~key with
    | Some outcome -> outcome
    | None ->
      let outcome = supervised () in
      Cache.store cache ~key outcome;
      outcome)

let runner ?jobs:override t =
  let batch_jobs = match override with Some j -> j | None -> t.n_jobs in
  {
    Evaluator.run_one = evaluate t;
    run_batch = Pool.map ~jobs:batch_jobs (evaluate t);
  }

let computed t = Atomic.get t.n_computed

type stats = {
  workers : int;
  elapsed_s : float;
  n_computed : int;
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  cache_corrupt : int;
  restored_runs : int;
  task_failures : int;
  retries : int;
  recovered : int;
  gave_up : int;
}

let stats t =
  let hits, misses, stores, corrupt =
    match t.cache with
    | None -> (0, 0, 0, 0)
    | Some c -> (Cache.hits c, Cache.misses c, Cache.stores c, Cache.corrupt c)
  in
  {
    workers = t.n_jobs;
    elapsed_s = Unix.gettimeofday () -. t.started_at;
    n_computed = Atomic.get t.n_computed;
    cache_hits = hits;
    cache_misses = misses;
    cache_stores = stores;
    cache_corrupt = corrupt;
    restored_runs = (match t.checkpoint with None -> 0 | Some c -> Checkpoint.restored c);
    task_failures = Supervise.Ledger.total_failures t.task_ledger;
    retries = Supervise.Ledger.total_retries t.task_ledger;
    recovered = Supervise.Ledger.recovered t.task_ledger;
    gave_up = Supervise.Ledger.gave_up t.task_ledger;
  }

let summary t =
  let s = stats t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "runtime: %d worker%s, %.1f s wall clock\n" s.workers
       (if s.workers = 1 then "" else "s")
       s.elapsed_s);
  let lookups = s.cache_hits + s.cache_misses in
  let hit_rate = if lookups = 0 then 0.0 else 100.0 *. float_of_int s.cache_hits /. float_of_int lookups in
  Buffer.add_string buf
    (Printf.sprintf "evaluations: %d computed, cache hits: %d (%.1f%% hit rate), %d stored"
       s.n_computed s.cache_hits hit_rate s.cache_stores);
  if s.cache_corrupt > 0 then
    Buffer.add_string buf (Printf.sprintf ", %d corrupt entries recomputed" s.cache_corrupt);
  if s.restored_runs > 0 then
    Buffer.add_string buf (Printf.sprintf "\ncheckpoint: %d runs restored" s.restored_runs);
  Buffer.add_string buf
    (Printf.sprintf "\nfault tolerance: %d task failures, retries: %d, %d recovered, %d gave up"
       s.task_failures s.retries s.recovered s.gave_up);
  (match Supervise.Ledger.snapshot t.task_ledger with
  | [] -> ()
  | rows ->
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "\n  %-14s %d failed, %d retried"
             r.Supervise.Ledger.class_name r.Supervise.Ledger.n_failures
             r.Supervise.Ledger.n_retries))
      rows);
  (match t.chaos with
  | None -> ()
  | Some fi ->
    Buffer.add_string buf
      (Printf.sprintf "\nchaos (%s): %d faults injected" (Faultin.to_string fi)
         (Faultin.total_injected fi));
    List.iter
      (fun site ->
        let n = Faultin.injected fi site in
        if n > 0 then
          Buffer.add_string buf
            (Printf.sprintf "\n  %-14s %d injected" (Faultin.site_name site) n))
      Faultin.all_sites);
  Buffer.contents buf
