(** Per-task supervision: deadlines, a bounded class-aware retry policy,
    and a failure ledger.

    The supervisor wraps one task computation.  When the outcome is
    [Failed f], the retry discipline depends on {!Into_core.Fail.environmental}:

    - {e Environmental} classes (timeout, worker crash, cache corruption)
      are presumed transient — the same task is re-run unchanged after an
      exponential backoff, so a successful retry recovers the {e exact}
      fault-free result (the task seed is untouched).
    - {e Numerical} classes (singular, no-convergence, non-finite, other)
      are deterministic in the task seed — the retry derives a fresh seed
      with {!attempt_seed} and skips the backoff.

    Both derivations are pure functions of (task seed, attempt), so a
    supervised run is exactly as reproducible as an unsupervised one. *)

type policy = {
  max_retries : int;  (** additional attempts after the first failure *)
  deadline_s : float option;
      (** default per-task sizing deadline, applied only when the task
          itself carries none (cooperative; see [Sizing.config]) *)
  backoff_s : float;
      (** base sleep before an environmental retry; attempt [k] sleeps
          [backoff_s * 2^k].  Zero disables sleeping. *)
}

val default_policy : policy
(** 2 retries, no deadline, 2 ms base backoff. *)

(** Atomic per-class counters shared by all worker domains. *)
module Ledger : sig
  type t

  val create : unit -> t

  val count_failure : t -> Into_core.Fail.t -> unit
  val count_retry : t -> Into_core.Fail.t -> unit
  val count_recovered : t -> unit
  val count_gave_up : t -> unit

  val failures : t -> (string * int) list
  (** Failed attempts per class name, every class listed (zeros included),
      canonical order. *)

  val retries : t -> (string * int) list

  val failures_of : t -> string -> int
  (** Count for one class name.  @raise Not_found on an unknown name. *)

  val retries_of : t -> string -> int
  val total_failures : t -> int
  val total_retries : t -> int

  val recovered : t -> int
  (** Tasks that succeeded on a retry after at least one failure. *)

  val gave_up : t -> int
  (** Tasks whose final attempt still failed. *)

  type row = { class_name : string; n_failures : int; n_retries : int }

  val snapshot : t -> row list
  (** Only the classes with activity, canonical order. *)
end

val attempt_seed : task_seed:int -> attempt:int -> int
(** Derived seed for numerical-class retry [attempt] (1-based) of a task:
    a SplitMix hash of the pair, nonnegative. *)

val run :
  ?faultin:Faultin.t ->
  ?ledger:Ledger.t ->
  policy:policy ->
  key:string ->
  compute:(Into_core.Evaluator.task -> Into_core.Evaluator.outcome) ->
  Into_core.Evaluator.task ->
  Into_core.Evaluator.outcome
(** Supervised evaluation of one task.  [key] is the task's cache key —
    the fault-injection site identifier.  Any exception escaping [compute]
    (including {!Faultin.Injected_crash}) is classified as
    [Fail.Worker_crash].  When [faultin] is set, evaluation-level faults
    ([Crash], [Delay], [Singular_solve], [Nan_perf]) may fire per attempt,
    {e before} the real computation — injected faults cost no simulation
    time and are deterministic per (seed, site, key, attempt). *)
