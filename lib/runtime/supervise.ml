module Evaluator = Into_core.Evaluator
module Fail = Into_core.Fail
module Sizing = Into_core.Sizing

type policy = {
  max_retries : int;
  deadline_s : float option;
  backoff_s : float;
}

let default_policy = { max_retries = 2; deadline_s = None; backoff_s = 0.002 }

module Ledger = struct
  let n_classes = List.length Fail.all_class_names

  type t = {
    l_failures : int Atomic.t array;  (** per {!Fail.class_index} *)
    l_retries : int Atomic.t array;
    recovered : int Atomic.t;
    gave_up : int Atomic.t;
  }

  let create () =
    {
      l_failures = Array.init n_classes (fun _ -> Atomic.make 0);
      l_retries = Array.init n_classes (fun _ -> Atomic.make 0);
      recovered = Atomic.make 0;
      gave_up = Atomic.make 0;
    }

  let count_failure t f = Atomic.incr t.l_failures.(Fail.class_index f)
  let count_retry t f = Atomic.incr t.l_retries.(Fail.class_index f)
  let count_recovered t = Atomic.incr t.recovered
  let count_gave_up t = Atomic.incr t.gave_up

  let failures t =
    List.mapi
      (fun i name -> (name, Atomic.get t.l_failures.(i)))
      Fail.all_class_names

  let retries t =
    List.mapi
      (fun i name -> (name, Atomic.get t.l_retries.(i)))
      Fail.all_class_names

  let failures_of t name = List.assoc name (failures t)
  let retries_of t name = List.assoc name (retries t)
  let total_failures t = List.fold_left (fun a (_, n) -> a + n) 0 (failures t)
  let total_retries t = List.fold_left (fun a (_, n) -> a + n) 0 (retries t)
  let recovered t = Atomic.get t.recovered
  let gave_up t = Atomic.get t.gave_up

  type row = { class_name : string; n_failures : int; n_retries : int }

  let snapshot t =
    List.filter_map
      (fun ((name, nf), (_, nr)) ->
        if nf = 0 && nr = 0 then None
        else Some { class_name = name; n_failures = nf; n_retries = nr })
      (List.combine (failures t) (retries t))
end

(* A numerical failure is a deterministic function of the task seed:
   retrying unchanged would fail identically, so the retry derives a fresh
   seed by SplitMix-mixing (seed, attempt).  Deterministic — the same
   (task, attempt) always re-seeds the same way, on any domain. *)
let attempt_seed ~task_seed ~attempt =
  let g = Into_util.Splitmix.create (Hashtbl.hash (task_seed, attempt)) in
  Int64.to_int (Into_util.Splitmix.next_int64 g) land max_int

let with_deadline ~policy (task : Evaluator.task) =
  match (policy.deadline_s, task.Evaluator.task_sizing.Sizing.deadline_s) with
  | None, _ | _, Some _ -> task
  | Some _, None ->
    {
      task with
      Evaluator.task_sizing =
        { task.Evaluator.task_sizing with Sizing.deadline_s = policy.deadline_s };
    }

let inject faultin ~key ~attempt =
  Option.bind faultin (fun fi ->
      if Faultin.fires fi Faultin.Crash ~key ~attempt then
        Some (Evaluator.Failed Fail.Worker_crash)
      else if Faultin.fires fi Faultin.Delay ~key ~attempt then
        Some (Evaluator.Failed Fail.Timeout)
      else if Faultin.fires fi Faultin.Singular_solve ~key ~attempt then
        Some (Evaluator.Failed Fail.Singular)
      else if Faultin.fires fi Faultin.Nan_perf ~key ~attempt then
        Some
          (Evaluator.Failed
             (Fail.Non_finite "chaos-injected non-finite performance"))
      else None)

let run ?faultin ?ledger ~policy ~key ~compute (task : Evaluator.task) =
  let task = with_deadline ~policy task in
  let count f = Option.iter (fun l -> f l) ledger in
  let rec attempt k t =
    let outcome =
      match inject faultin ~key ~attempt:k with
      | Some injected -> injected
      | None -> (
        match compute t with
        | o -> o
        | exception Faultin.Injected_crash -> Evaluator.Failed Fail.Worker_crash
        | exception _ -> Evaluator.Failed Fail.Worker_crash)
    in
    match outcome with
    | Evaluator.Evaluated _ | Evaluator.Rejected _ ->
      if k > 0 then count Ledger.count_recovered;
      outcome
    | Evaluator.Failed f ->
      count (fun l -> Ledger.count_failure l f);
      if k >= policy.max_retries then begin
        count Ledger.count_gave_up;
        outcome
      end
      else begin
        count (fun l -> Ledger.count_retry l f);
        if Fail.environmental f then begin
          (* The computation itself is presumed sound: re-run the SAME
             task, after an exponential backoff, so a transient fault
             recovers the exact fault-free result. *)
          if policy.backoff_s > 0.0 then
            Unix.sleepf (policy.backoff_s *. (2.0 ** float_of_int k));
          attempt (k + 1) t
        end
        else
          (* Deterministically fails under this seed: derive a new one. *)
          attempt (k + 1)
            {
              t with
              Evaluator.task_seed =
                attempt_seed ~task_seed:task.Evaluator.task_seed
                  ~attempt:(k + 1);
            }
      end
  in
  attempt 0 task
