type event =
  | Run_started of { label : string; index : int; total : int }
  | Run_finished of { label : string; index : int; total : int; elapsed_s : float }
  | Run_restored of { label : string; index : int; total : int }
  | Run_failed of { label : string; index : int; total : int; reason : string }

let render = function
  | Run_started { label; index; total } -> Printf.sprintf "[%d/%d] %s" index total label
  | Run_finished { label; index; total; elapsed_s } ->
    Printf.sprintf "[%d/%d] %s  done in %.1f s" index total label elapsed_s
  | Run_restored { label; index; total } ->
    Printf.sprintf "[%d/%d] %s  restored from checkpoint" index total label
  | Run_failed { label; index; total; reason } ->
    Printf.sprintf "[%d/%d] %s  failed: %s" index total label reason

let of_string_renderer f = function
  | Run_started _ as e -> f (render e)
  | Run_restored _ as e -> f (render e)
  | Run_failed _ as e -> f (render e)
  | Run_finished _ -> ()
