(** Structured progress events for long-running campaigns.

    Replaces the old [string -> unit] progress callback: consumers that
    want machine-readable progress (counting restored runs in a test,
    driving a UI) match on the event; consumers that only want a line of
    text go through {!render} or wrap a legacy string callback with
    {!of_string_renderer}. *)

type event =
  | Run_started of { label : string; index : int; total : int }
      (** [index] is 1-based within the campaign grid of [total] runs. *)
  | Run_finished of { label : string; index : int; total : int; elapsed_s : float }
  | Run_restored of { label : string; index : int; total : int }
      (** The run was replayed from the checkpoint journal, not executed. *)
  | Run_failed of { label : string; index : int; total : int; reason : string }
      (** The run raised instead of completing; the campaign carries on
          with an empty trace for this cell rather than aborting the whole
          grid.  [reason] is the rendered exception. *)

val render : event -> string
(** One human-readable line, e.g. ["[3/45] S-1 / INTO-OA / run 2"]. *)

val of_string_renderer : (string -> unit) -> event -> unit
(** Adapt a legacy string callback: forwards {!render} of [Run_started],
    [Run_restored] and [Run_failed] (one line per run, as the old API did)
    and drops [Run_finished]. *)
