(** The evaluation engine: ties the work {!Pool}, the outcome {!Cache}, the
    {!Checkpoint} journal and the {!Supervise} retry supervisor together
    behind the [Into_core.Evaluator.runner] injection point.

    One engine is shared by every worker domain of a campaign, so all of
    its state is mutex- or atomically-protected.  Because every
    [Evaluator.task] carries its own seed — and every supervision decision
    (retry seeds, fault injection) is a pure function of the task — an
    engine-backed runner is result-identical at any job count and any
    cache temperature, faults or no faults; only wall clock and simulation
    counts change.  With retries, a deadline or chaos enabled, results may
    legitimately differ from [Evaluator.serial_runner] (which has none of
    the three); they still never differ between two engines configured the
    same way. *)

type t

val create :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?on_event:(Progress.event -> unit) ->
  ?supervise:Supervise.policy ->
  ?faultin:Faultin.t ->
  unit ->
  t
(** [jobs] defaults to [1] (serial); [0] or negative means one worker per
    core.  Without [cache] every task is computed; without [checkpoint]
    nothing is journalled.  [supervise] defaults to
    {!Supervise.default_policy}; [faultin] (absent by default) arms the
    chaos harness. *)

val jobs : t -> int
(** Resolved worker count (auto-detection already applied). *)

val cache : t -> Cache.t option
val checkpoint : t -> Checkpoint.t option
val policy : t -> Supervise.policy

val faultin : t -> Faultin.t option
(** The chaos harness, when armed.  [Campaign] consults it for the
    checkpoint-tear site, which lives outside task evaluation. *)

val ledger : t -> Supervise.Ledger.t
(** Per-class failure/retry counts accumulated by this engine. *)

val emit : t -> Progress.event -> unit
(** Deliver an event to the [on_event] callback, serialized under a mutex
    so concurrent worker domains never interleave lines. *)

val evaluate : t -> Into_core.Evaluator.task -> Into_core.Evaluator.outcome
(** Cache lookup, then a supervised computation on a miss (storing the
    final, post-retry outcome back under the original task's key). *)

val runner : ?jobs:int -> t -> Into_core.Evaluator.runner
(** A cache-backed [Evaluator.runner] for injection into [Topo_bo] and the
    baselines.  [jobs] overrides the engine's worker count for
    [run_batch] — campaigns that already parallelize across runs pass
    [~jobs:1] to keep inner evaluation serial and avoid nested domains. *)

val computed : t -> int
(** Tasks actually evaluated (cache misses) through this engine. *)

type stats = {
  workers : int;
  elapsed_s : float;  (** wall clock since [create] *)
  n_computed : int;
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  cache_corrupt : int;
  restored_runs : int;  (** checkpoint records loaded at startup *)
  task_failures : int;  (** failed attempts, all classes *)
  retries : int;
  recovered : int;  (** tasks rescued by a retry *)
  gave_up : int;  (** tasks still failed after the last retry *)
}

val stats : t -> stats

val summary : t -> string
(** Multi-line human-readable account of {!stats}.  Always contains the
    literal substrings ["cache hits: <n>"] and ["retries: <n>"] — CI greps
    them to assert a warm rerun hit the cache and a chaos run actually
    retried.  Includes a per-class ledger breakdown and, when chaos is
    armed, per-site injection counts. *)
