(** The evaluation engine: ties the work {!Pool}, the outcome {!Cache} and
    the {!Checkpoint} journal together behind the
    [Into_core.Evaluator.runner] injection point.

    One engine is shared by every worker domain of a campaign, so all of
    its state is mutex- or atomically-protected.  Because every
    [Evaluator.task] carries its own seed, an engine-backed runner is
    result-identical to [Evaluator.serial_runner] at any job count and any
    cache temperature — only wall clock and simulation counts change. *)

type t

val create :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?on_event:(Progress.event -> unit) ->
  unit ->
  t
(** [jobs] defaults to [1] (serial); [0] or negative means one worker per
    core.  Without [cache] every task is computed; without [checkpoint]
    nothing is journalled. *)

val jobs : t -> int
(** Resolved worker count (auto-detection already applied). *)

val cache : t -> Cache.t option
val checkpoint : t -> Checkpoint.t option

val emit : t -> Progress.event -> unit
(** Deliver an event to the [on_event] callback, serialized under a mutex
    so concurrent worker domains never interleave lines. *)

val evaluate : t -> Into_core.Evaluator.task -> Into_core.Evaluator.outcome
(** Cache lookup, then [Evaluator.run_task] on a miss (storing the fresh
    outcome back). *)

val runner : ?jobs:int -> t -> Into_core.Evaluator.runner
(** A cache-backed [Evaluator.runner] for injection into [Topo_bo] and the
    baselines.  [jobs] overrides the engine's worker count for
    [run_batch] — campaigns that already parallelize across runs pass
    [~jobs:1] to keep inner evaluation serial and avoid nested domains. *)

val computed : t -> int
(** Tasks actually evaluated (cache misses) through this engine. *)

type stats = {
  workers : int;
  elapsed_s : float;  (** wall clock since [create] *)
  n_computed : int;
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  cache_corrupt : int;
  restored_runs : int;  (** checkpoint records loaded at startup *)
}

val stats : t -> stats

val summary : t -> string
(** Multi-line human-readable account of {!stats}.  Always contains the
    literal substring ["cache hits: <n>"] — CI greps for it to assert a
    warm rerun hit the cache. *)
