module Evaluator = Into_core.Evaluator
module Topology = Into_circuit.Topology

let version = 1
let magic = "INTO-OA-CACHE"

type t = {
  root : string;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_stores : int Atomic.t;
  n_corrupt : int Atomic.t;
}

let create ~dir =
  Fsutil.mkdir_p dir;
  {
    root = dir;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_stores = Atomic.make 0;
    n_corrupt = Atomic.make 0;
  }

let dir t = t.root
let hits t = Atomic.get t.n_hits
let misses t = Atomic.get t.n_misses
let stores t = Atomic.get t.n_stores
let corrupt t = Atomic.get t.n_corrupt

let key_of_task (task : Evaluator.task) =
  let spec = task.Evaluator.task_spec in
  let sizing = task.Evaluator.task_sizing in
  Printf.sprintf
    "v%d|topo=%d|spec=%s;%.17g;%.17g;%.17g;%.17g;%.17g|sizing=%d;%d;%d;%.17g;%d|seed=%d"
    version
    (Topology.to_index task.Evaluator.task_topology)
    spec.Into_circuit.Spec.name spec.Into_circuit.Spec.min_gain_db
    spec.Into_circuit.Spec.min_gbw_hz spec.Into_circuit.Spec.min_pm_deg
    spec.Into_circuit.Spec.max_power_w spec.Into_circuit.Spec.cl_f
    sizing.Into_core.Sizing.n_init sizing.Into_core.Sizing.n_iter
    sizing.Into_core.Sizing.n_candidates sizing.Into_core.Sizing.wei_w
    sizing.Into_core.Sizing.refit_every task.Evaluator.task_seed

let path_of_key t ~key = Filename.concat t.root (Content_hash.hex key)

(* The envelope repeats the full key: the file name is only a 64-bit hash,
   so an exact-match check on load turns a collision into a plain miss. *)
type envelope = {
  env_magic : string;
  env_version : int;
  env_key : string;
  env_outcome : Evaluator.outcome;
}

let find t ~key =
  let path = path_of_key t ~key in
  let entry =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
      let v =
        match (Marshal.from_channel ic : envelope) with
        | env ->
          if
            String.equal env.env_magic magic
            && env.env_version = version
            && String.equal env.env_key key
          then Some env.env_outcome
          else begin
            Atomic.incr t.n_corrupt;
            None
          end
        | exception _ ->
          Atomic.incr t.n_corrupt;
          None
      in
      close_in_noerr ic;
      v
  in
  (match entry with
  | Some _ -> Atomic.incr t.n_hits
  | None -> Atomic.incr t.n_misses);
  entry

let store t ~key outcome =
  let env =
    { env_magic = magic; env_version = version; env_key = key; env_outcome = outcome }
  in
  let ok =
    Fsutil.write_atomically ~path:(path_of_key t ~key) (fun oc ->
        Marshal.to_channel oc env [])
  in
  if ok then Atomic.incr t.n_stores
