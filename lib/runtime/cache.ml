module Evaluator = Into_core.Evaluator
module Topology = Into_circuit.Topology

let version = 2
let magic = "INTO-OA-CACHE"

type t = {
  root : string;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_stores : int Atomic.t;
  n_corrupt : int Atomic.t;
}

let create ~dir =
  Fsutil.mkdir_p dir;
  {
    root = dir;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_stores = Atomic.make 0;
    n_corrupt = Atomic.make 0;
  }

let dir t = t.root
let hits t = Atomic.get t.n_hits
let misses t = Atomic.get t.n_misses
let stores t = Atomic.get t.n_stores
let corrupt t = Atomic.get t.n_corrupt

let key_of_task (task : Evaluator.task) =
  let spec = task.Evaluator.task_spec in
  let sizing = task.Evaluator.task_sizing in
  Printf.sprintf
    "v%d|topo=%d|spec=%s;%.17g;%.17g;%.17g;%.17g;%.17g|sizing=%d;%d;%d;%.17g;%d;%s|seed=%d"
    version
    (Topology.to_index task.Evaluator.task_topology)
    spec.Into_circuit.Spec.name spec.Into_circuit.Spec.min_gain_db
    spec.Into_circuit.Spec.min_gbw_hz spec.Into_circuit.Spec.min_pm_deg
    spec.Into_circuit.Spec.max_power_w spec.Into_circuit.Spec.cl_f
    sizing.Into_core.Sizing.n_init sizing.Into_core.Sizing.n_iter
    sizing.Into_core.Sizing.n_candidates sizing.Into_core.Sizing.wei_w
    sizing.Into_core.Sizing.refit_every
    (match sizing.Into_core.Sizing.deadline_s with
    | None -> "none"
    | Some s -> Printf.sprintf "%.17g" s)
    task.Evaluator.task_seed

let path_of_key t ~key = Filename.concat t.root (Content_hash.hex key)

(* v2 format: TWO marshalled values per file.  First a header carrying only
   scalar/string fields — always memory-safe to decode, whatever format
   version actually wrote the file — then, separately, the outcome.  The
   outcome is only unmarshalled once the header's magic, version and full
   key have all validated, so an outcome written against an older type
   layout (whose decode would be memory-unsafe) is never touched.  The
   header repeats the full key because the file name is only a 64-bit hash:
   an exact-match check on load turns a collision into a plain miss. *)
type header = {
  h_magic : string;
  h_version : int;
  h_key : string;
}

let find t ~key =
  let path = path_of_key t ~key in
  let entry =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
      let v =
        match (Marshal.from_channel ic : header) with
        | h ->
          if
            String.equal h.h_magic magic
            && h.h_version = version
            && String.equal h.h_key key
          then
            (match (Marshal.from_channel ic : Evaluator.outcome) with
            | outcome -> Some outcome
            | exception _ ->
              Atomic.incr t.n_corrupt;
              None)
          else begin
            Atomic.incr t.n_corrupt;
            None
          end
        | exception _ ->
          Atomic.incr t.n_corrupt;
          None
      in
      close_in_noerr ic;
      v
  in
  (match entry with
  | Some _ -> Atomic.incr t.n_hits
  | None -> Atomic.incr t.n_misses);
  entry

let store t ~key outcome =
  let ok =
    Fsutil.write_atomically ~path:(path_of_key t ~key) (fun oc ->
        Marshal.to_channel oc { h_magic = magic; h_version = version; h_key = key } [];
        Marshal.to_channel oc (outcome : Evaluator.outcome) [])
  in
  if ok then Atomic.incr t.n_stores

let corrupt_entry t ~key =
  let path = path_of_key t ~key in
  match open_out_gen [ Open_wronly; Open_binary ] 0o644 path with
  | exception Sys_error _ -> false
  | oc ->
    (* Stomp the Marshal magic number in place; the next [find] fails to
       decode the header, counts the entry corrupt, and recomputes. *)
    output_string oc "CHAOSCHAOS";
    close_out_noerr oc;
    true
