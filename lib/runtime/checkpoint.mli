(** Checkpoint journal: an append-only log of completed campaign runs.

    Each record is a (key, payload) pair framed as a Marshal envelope with
    a magic string and format version.  On [start], the valid prefix of an
    existing journal is loaded and any trailing partial record (a crash
    mid-append) is truncated away, so a journal is always safe to resume
    from.  Appends are mutex-protected and flushed immediately, making the
    journal crash-consistent record by record. *)

type t

val start : path:string -> fresh:bool -> t
(** Open the journal at [path].  [fresh:true] discards any existing
    records; [fresh:false] resumes, keeping the valid prefix. *)

val restored : t -> int
(** Number of records loaded from disk at [start] time. *)

val find : t -> key:string -> string option
(** Payload previously recorded for [key] (restored or appended). *)

val append : t -> key:string -> payload:string -> unit
(** Record a completed unit of work.  Thread/domain-safe.  A key appended
    twice keeps the latest payload on lookup (so a record re-appended
    after journal damage converges).  Best-effort on an unwritable path:
    lookups still work, persistence is lost. *)

val tear : t -> bytes:int -> unit
(** Chop [bytes] off the end of the journal file, simulating a crash
    mid-append.  In-memory state is untouched; the damage only matters to
    a later [start], which truncates back to the last whole frame and lets
    the campaign recompute the lost tail.  Exists for the fault-injection
    harness ([Faultin]). *)

val entries : t -> (string * string) list
(** All records, restored and appended, in journal order. *)

val close : t -> unit
