let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hex s = Printf.sprintf "%016Lx" (fnv1a64 s)
