let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f xs =
  let n = Array.length xs in
  let jobs = if jobs <= 0 then default_jobs () else jobs in
  let workers = min jobs n in
  if workers <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Each slot is written by exactly one worker; [Domain.join] publishes
       the writes to the collecting domain. *)
    let body () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match f xs.(i) with
            | v -> Ok v
            | exception exn -> Error (exn, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn body) in
    body ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (exn, bt)) -> Printexc.raise_with_backtrace exn bt
        | None -> assert false)
      results
  end
