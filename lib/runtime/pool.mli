(** Domain-based work pool.

    [map] executes independent pieces of work on a fixed set of worker
    domains (OCaml 5 [Domain.spawn]) draining a shared index counter.  The
    result array preserves input order, so a parallel map is
    result-identical to a serial one whenever the work items are
    independent — which every [Into_core.Evaluator.task] is by
    construction. *)

val default_jobs : unit -> int
(** One worker per core ([Domain.recommended_domain_count]). *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs] computed by [min jobs (length xs)]
    domains (the calling domain participates).  [jobs <= 0] means
    {!default_jobs}; [jobs = 1] runs serially in the calling domain with no
    domain spawned.  The first exception raised by any [f] is re-raised
    (with its backtrace) after all workers have drained. *)
