(** Small filesystem helpers shared by the cache and checkpoint stores. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents; existing directories are
    fine.  Creation failures other than "already exists" surface when the
    directory is first written to, not here. *)

val write_atomically : path:string -> (out_channel -> unit) -> bool
(** Write through a unique sibling temp file, then [rename] onto [path] —
    readers never observe a half-written file, and concurrent writers of
    the same path last-win with either's complete content.  Returns [false]
    (leaving no temp file behind) when the write failed. *)
