(** Deterministic fault injection for the execution engine.

    Chaos testing with a twist: every injection decision is a {e pure
    function} of the harness seed, the injection site, the task's cache
    key, and the attempt number — no mutable generator, no wall clock.  A
    chaos campaign is therefore exactly as reproducible as a fault-free
    one: the same faults fire at the same tasks whatever the parallelism,
    scheduling order, or cache temperature, and [-j N] chaos runs are
    bit-identical to serial ones.

    A harness is configured from a compact spec string (the [--chaos] flag
    of the CLIs), e.g. ["seed=7,delay=0.2,crash=0.1"]. *)

type site =
  | Singular_solve  (** evaluation fails as [Fail.Singular] *)
  | Nan_perf  (** evaluation fails as [Fail.Non_finite _] *)
  | Delay  (** the task's deadline "expires": [Fail.Timeout] *)
  | Crash  (** the worker raises {!Injected_crash}: [Fail.Worker_crash] *)
  | Corrupt_cache  (** the task's cache entry is damaged before the read *)
  | Tear_checkpoint  (** the journal tail is truncated after an append *)

exception Injected_crash
(** Raised inside the supervised computation at a [Crash] site. *)

val all_sites : site list
val site_name : site -> string
(** ["singular"], ["nan"], ["delay"], ["crash"], ["cache"], ["tear"] —
    also the keys of the spec grammar. *)

type t

val create : ?seed:int -> rates:(site * float) list -> unit -> t
(** Unlisted sites get rate 0.  [seed] defaults to 0.
    @raise Invalid_argument on a rate outside [0,1]. *)

val parse : string -> (t, string) result
(** Grammar: comma-separated [key=value] fields, where [key] is [seed] (an
    integer), a site name, or [all] (sets every site's rate); [value] for
    rate fields is a float in [0,1].  Later fields override earlier ones.
    Example: ["seed=11,all=0.05,crash=0.2"]. *)

val to_string : t -> string
(** Round-trippable spec form, nonzero rates only. *)

val seed : t -> int
val rate : t -> site -> float

val decide : t -> site -> key:string -> attempt:int -> bool
(** Pure: would a fault fire at this site for this task attempt?  Makes no
    record. *)

val record : t -> site -> unit
(** Count one injection (atomic; safe from worker domains). *)

val fires : t -> site -> key:string -> attempt:int -> bool
(** {!decide}, recording the injection when it fires. *)

val injected : t -> site -> int
(** Injections recorded at one site so far. *)

val total_injected : t -> int
