let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  end

let counter = Atomic.make 0

let write_atomically ~path f =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
      (Atomic.fetch_and_add counter 1)
  in
  match open_out_bin tmp with
  | exception Sys_error _ -> false
  | oc -> (
    let written =
      match f oc with
      | () -> true
      | exception _ -> false
    in
    close_out_noerr oc;
    if written then
      match Sys.rename tmp path with
      | () -> true
      | exception Sys_error _ ->
        (try Sys.remove tmp with Sys_error _ -> ());
        false
    else begin
      (try Sys.remove tmp with Sys_error _ -> ());
      false
    end)
