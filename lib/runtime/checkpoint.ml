let magic = "INTO-OA-CKPT"
let version = 1

type frame = {
  frame_magic : string;
  frame_version : int;
  frame_key : string;
  frame_payload : string;
}

type t = {
  path : string;
  mutable oc : out_channel option;
  table : (string, string) Hashtbl.t;
  mutable order : string list;  (** journal order, reversed *)
  n_restored : int;
  lock : Mutex.t;
}

(* Read frames until the first decode error, reporting how many bytes of
   the file were valid so the caller can truncate the corrupt tail. *)
let load_valid_prefix path =
  match open_in_bin path with
  | exception Sys_error _ -> ([], 0)
  | ic ->
    let rec loop acc valid_end =
      match (Marshal.from_channel ic : frame) with
      | f when String.equal f.frame_magic magic && f.frame_version = version ->
        loop ((f.frame_key, f.frame_payload) :: acc) (pos_in ic)
      | _ -> (List.rev acc, valid_end)
      | exception _ -> (List.rev acc, valid_end)
    in
    let frames, valid_end = loop [] 0 in
    close_in_noerr ic;
    (frames, valid_end)

let start ~path ~fresh =
  Fsutil.mkdir_p (Filename.dirname path);
  let restored =
    if fresh then []
    else begin
      let frames, valid_end = load_valid_prefix path in
      if Sys.file_exists path then begin
        match Unix.truncate path valid_end with
        | () -> ()
        | exception Unix.Unix_error (_, _, _) -> ()
      end;
      frames
    end
  in
  let oc =
    let flags =
      if fresh then [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
      else [ Open_wronly; Open_creat; Open_append; Open_binary ]
    in
    match open_out_gen flags 0o644 path with
    | oc -> Some oc
    | exception Sys_error _ -> None
  in
  let table = Hashtbl.create 64 in
  (* Last write wins: a key journalled twice (e.g. re-appended after a torn
     tail was repaired) converges on the most recent payload. *)
  let order = ref [] in
  List.iter
    (fun (key, payload) ->
      if not (Hashtbl.mem table key) then order := key :: !order;
      Hashtbl.replace table key payload)
    restored;
  {
    path;
    oc;
    table;
    order = !order;
    n_restored = List.length restored;
    lock = Mutex.create ();
  }

let restored t = t.n_restored
let find t ~key = Hashtbl.find_opt t.table key

let append t ~key ~payload =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not (Hashtbl.mem t.table key) then t.order <- key :: t.order;
      Hashtbl.replace t.table key payload;
      match t.oc with
      | None -> ()
      | Some oc -> (
        let frame =
          {
            frame_magic = magic;
            frame_version = version;
            frame_key = key;
            frame_payload = payload;
          }
        in
        match
          Marshal.to_channel oc frame [];
          flush oc
        with
        | () -> ()
        | exception Sys_error _ -> t.oc <- None))

let entries t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      List.rev_map
        (fun key -> (key, Hashtbl.find t.table key))
        t.order)

(* Simulate a crash mid-append: chop [bytes] off the end of the journal
   file.  The in-memory table is untouched (this process already has the
   results); only a later [start] sees the damage, truncates back to the
   last whole frame, and recomputes the lost tail.  The channel is
   reopened in append mode so frames written after the tear land at the
   new end of file rather than over a sparse hole. *)
let tear t ~bytes =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (match t.oc with
      | Some oc ->
        close_out_noerr oc;
        t.oc <- None
      | None -> ());
      (match
         let size = (Unix.stat t.path).Unix.st_size in
         Unix.truncate t.path (max 0 (size - max 0 bytes))
       with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) | exception Sys_error _ -> ());
      match
        open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 t.path
      with
      | oc -> t.oc <- Some oc
      | exception Sys_error _ -> ())

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        close_out_noerr oc;
        t.oc <- None)
