type site =
  | Singular_solve
  | Nan_perf
  | Delay
  | Crash
  | Corrupt_cache
  | Tear_checkpoint

exception Injected_crash

let all_sites =
  [ Singular_solve; Nan_perf; Delay; Crash; Corrupt_cache; Tear_checkpoint ]

let site_name = function
  | Singular_solve -> "singular"
  | Nan_perf -> "nan"
  | Delay -> "delay"
  | Crash -> "crash"
  | Corrupt_cache -> "cache"
  | Tear_checkpoint -> "tear"

let site_index = function
  | Singular_solve -> 0
  | Nan_perf -> 1
  | Delay -> 2
  | Crash -> 3
  | Corrupt_cache -> 4
  | Tear_checkpoint -> 5

let n_sites = List.length all_sites

type t = {
  seed : int;
  rates : float array;  (** per {!site_index}, in [0,1] *)
  injected : int Atomic.t array;
}

let create ?(seed = 0) ~rates () =
  let rate_of site =
    match List.assoc_opt site rates with
    | None -> 0.0
    | Some r ->
      if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
        invalid_arg
          (Printf.sprintf "Faultin.create: rate %g for %s outside [0,1]" r
             (site_name site))
      else r
  in
  {
    seed;
    rates = Array.init n_sites (fun i -> rate_of (List.nth all_sites i));
    injected = Array.init n_sites (fun _ -> Atomic.make 0);
  }

let seed t = t.seed
let rate t site = t.rates.(site_index site)

let parse spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parts =
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ',' (String.trim spec))
  in
  if parts = [] then fail "empty chaos spec"
  else
    let rec go ~seed ~rates = function
      | [] -> Ok (create ?seed ~rates ())
      | part :: rest -> (
        match String.index_opt part '=' with
        | None -> fail "chaos spec field %S is not key=value" part
        | Some i -> (
          let key = String.trim (String.sub part 0 i) in
          let value =
            String.trim (String.sub part (i + 1) (String.length part - i - 1))
          in
          match key with
          | "seed" -> (
            match int_of_string_opt value with
            | Some s -> go ~seed:(Some s) ~rates rest
            | None -> fail "chaos seed %S is not an integer" value)
          | _ -> (
            match float_of_string_opt value with
            | None -> fail "chaos rate %S for %s is not a number" value key
            | Some r when not (Float.is_finite r) || r < 0.0 || r > 1.0 ->
              fail "chaos rate %g for %s outside [0,1]" r key
            | Some r ->
              if key = "all" then
                go ~seed
                  ~rates:(List.map (fun s -> (s, r)) all_sites @ rates)
                  rest
              else (
                match
                  List.find_opt (fun s -> site_name s = key) all_sites
                with
                | Some site -> go ~seed ~rates:((site, r) :: rates) rest
                | None ->
                  fail "unknown chaos site %S (known: %s, all, seed)" key
                    (String.concat ", " (List.map site_name all_sites))))))
    in
    (* Later fields win: rates are consulted left-to-right via assoc, so
       accumulate in reverse. *)
    match go ~seed:None ~rates:[] parts with
    | Ok _ as ok -> ok
    | Error _ as e -> e

let to_string t =
  String.concat ","
    (Printf.sprintf "seed=%d" t.seed
    :: List.filter_map
         (fun site ->
           let r = rate t site in
           if r = 0.0 then None
           else Some (Printf.sprintf "%s=%g" (site_name site) r))
         all_sites)

(* FNV-1a diffuses trailing bytes poorly: the last character is multiplied
   by the prime only once, so it perturbs the hash — and the uniform float
   below — by at most ~2^-16.  The quadruple string varies exactly in its
   tail (the attempt counter, a task seed suffix), so without a finalizer
   every attempt of a task would share one decision and retries could
   never clear an injected fault.  MurmurHash3's fmix64 avalanches every
   input bit across the whole word. *)
let avalanche h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

(* The injection decision is a pure function of (harness seed, site, key,
   attempt): hash the quadruple, map the hash to [0,1), compare to the
   site's rate.  No mutable generator state — so the decision for a given
   task is identical whatever domain, order, or parallelism evaluates it,
   which is what keeps chaos campaigns bit-reproducible under [-j N]. *)
let decide t site ~key ~attempt =
  let r = rate t site in
  if r <= 0.0 then false
  else
    let h =
      avalanche
        (Content_hash.fnv1a64
           (Printf.sprintf "%d|%s|%s|%d" t.seed (site_name site) key attempt))
    in
    (* Top 53 bits -> uniform float in [0,1). *)
    let u =
      Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
    in
    u < r

let record t site = Atomic.incr t.injected.(site_index site)

let fires t site ~key ~attempt =
  let yes = decide t site ~key ~attempt in
  if yes then record t site;
  yes

let injected t site = Atomic.get t.injected.(site_index site)

let total_injected t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.injected
