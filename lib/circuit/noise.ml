type result = {
  output_rms_v : float;
  input_spot_nv : float option;
  n_sources : int;
}

let temperature_k = 300.0
let boltzmann = 1.380649e-23
let gamma_channel = 2.0 /. 3.0

type source = {
  into : Netlist.node;
  out_of : Netlist.node;
  psd : float -> float;  (** current PSD (A^2/Hz) at a frequency *)
}

let sources netlist =
  List.filter_map
    (fun prim ->
      match prim with
      | Netlist.Conductance (a, b, _) | Netlist.Capacitance (a, b, _)
      | Netlist.Series_rc (a, b, _, _) ->
        let psd f =
          let y = Mna.element_admittance prim ~freq_hz:f in
          4.0 *. boltzmann *. temperature_k *. Float.max y.Complex.re 0.0
        in
        Some { into = a; out_of = b; psd }
      | Netlist.Vccs { out; gm; _ } ->
        let psd _ = 4.0 *. boltzmann *. temperature_k *. gamma_channel *. Float.abs gm in
        Some { into = out; out_of = Netlist.Gnd; psd })
    netlist.Netlist.prims

(* Output noise PSD (V^2/Hz) at one frequency by superposition. *)
let output_psd netlist srcs f =
  List.fold_left
    (fun acc s ->
      let v = Mna.solve_with_injection netlist ~freq_hz:f ~into:s.into ~out_of:s.out_of in
      let h2 = Complex.norm2 v.(2) in
      acc +. (s.psd f *. h2))
    0.0 srcs

let analyze ?(f_lo = 1.0) ?(f_hi = 1e8) ?(points_per_decade = 6) netlist =
  if f_lo <= 0.0 || f_hi <= f_lo then invalid_arg "Noise.analyze: bad band";
  let srcs = sources netlist in
  let decades = log10 (f_hi /. f_lo) in
  let n = max 2 (int_of_float (Float.round (decades *. float_of_int points_per_decade)) + 1) in
  let freqs =
    Array.init n (fun i -> f_lo *. ((f_hi /. f_lo) ** (float_of_int i /. float_of_int (n - 1))))
  in
  let psds = Array.map (fun f -> output_psd netlist srcs f) freqs in
  (* Trapezoid on the (linear) frequency axis. *)
  let integral = ref 0.0 in
  for i = 0 to n - 2 do
    integral := !integral +. (0.5 *. (psds.(i) +. psds.(i + 1)) *. (freqs.(i + 1) -. freqs.(i)))
  done;
  let f_center = sqrt (f_lo *. f_hi) in
  let gain2 = Complex.norm2 (Mna.transfer netlist ~freq_hz:f_center) in
  (* A dead signal path has no input-referred noise — dividing by a zero
     gain would manufacture a NaN (or inf), not a density. *)
  let input_spot =
    if gain2 <= 0.0 then None
    else Some (sqrt (output_psd netlist srcs f_center /. gain2) *. 1e9)
  in
  {
    output_rms_v = sqrt (Float.max !integral 0.0);
    input_spot_nv = input_spot;
    n_sources = List.length srcs;
  }
