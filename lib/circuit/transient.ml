module Mat = Into_linalg.Mat
module Lu = Into_linalg.Lu

type waveform = {
  time_s : float array;
  vout : float array;
  final_value : float option;
}

type metrics = {
  overshoot_pct : float;
  settling_time_s : float option;
  settled : bool;
}

let close_the_loop sys =
  let n = sys.Linear_system.n in
  let out = sys.Linear_system.output in
  let g = Mat.copy sys.Linear_system.g and c = Mat.copy sys.Linear_system.c in
  for i = 0 to n - 1 do
    Mat.set g i out (Mat.get g i out +. sys.Linear_system.b_g.(i));
    Mat.set c i out (Mat.get c i out +. sys.Linear_system.b_c.(i))
  done;
  { sys with Linear_system.g; c }

let default_t_end netlist =
  let f_ref =
    match Ac.analyze netlist with
    | Some r when r.Ac.gbw_hz > 0.0 -> r.Ac.gbw_hz
    | Some _ | None -> 1e6
  in
  200.0 /. (2.0 *. Float.pi *. f_ref)

let step_response ?(closed_loop = true) ?t_end ?(points = 2000) netlist =
  if points < 2 then invalid_arg "Transient.step_response: too few points";
  let sys0 = Linear_system.build netlist in
  let sys = if closed_loop then close_the_loop sys0 else sys0 in
  let n = sys.Linear_system.n in
  let t_end = match t_end with Some t -> t | None -> default_t_end netlist in
  let h = t_end /. float_of_int (points - 1) in
  (* Trapezoidal rule: (C/h + G/2) x' = (C/h - G/2) x + b_g (u'+u)/2
                                        + b_c (u'-u)/h. *)
  let lhs =
    Mat.add (Mat.scale (1.0 /. h) sys.Linear_system.c) (Mat.scale 0.5 sys.Linear_system.g)
  in
  let rhs_m =
    Mat.add (Mat.scale (1.0 /. h) sys.Linear_system.c) (Mat.scale (-0.5) sys.Linear_system.g)
  in
  let lu = Lu.decompose lhs in
  let x = ref (Array.make n 0.0) in
  let time_s = Array.make points 0.0 in
  let vout = Array.make points 0.0 in
  for k = 1 to points - 1 do
    let u_prev = if k - 1 = 0 then 0.0 else 1.0 in
    let u_now = 1.0 in
    let rhs = Mat.mul_vec rhs_m !x in
    for i = 0 to n - 1 do
      rhs.(i) <-
        rhs.(i)
        +. (sys.Linear_system.b_g.(i) *. 0.5 *. (u_now +. u_prev))
        +. (sys.Linear_system.b_c.(i) *. (u_now -. u_prev) /. h)
    done;
    x := Lu.solve lu rhs;
    time_s.(k) <- float_of_int k *. h;
    vout.(k) <- !x.(sys.Linear_system.output)
  done;
  (* DC target of the step.  A singular conductance matrix has no DC
     operating point: the target is reported as absent rather than NaN, so
     settling metrics can't silently compare against NaN downstream. *)
  let final_value =
    match Lu.solve_system (Mat.copy sys.Linear_system.g) sys.Linear_system.b_g with
    | dc -> Some dc.(sys.Linear_system.output)
    | exception Lu.Singular -> None
  in
  { time_s; vout; final_value }

let measure_against ~band w final =
  let scale = Float.max (Float.abs final) 1e-12 in
  let peak =
    Array.fold_left
      (fun acc v ->
        let excursion = (v -. final) *. (if final >= 0.0 then 1.0 else -1.0) in
        Float.max acc excursion)
      0.0 w.vout
  in
  let tolerance = band *. scale in
  (* Last sample outside the band determines the settling instant. *)
  let last_outside = ref None in
  Array.iteri
    (fun i v -> if Float.abs (v -. final) > tolerance then last_outside := Some i)
    w.vout;
  let n = Array.length w.vout in
  let settling_time_s, settled =
    match !last_outside with
    | None -> (Some 0.0, true)
    | Some i when i = n - 1 -> (None, false)
    | Some i -> (Some w.time_s.(i + 1), true)
  in
  { overshoot_pct = 100.0 *. peak /. scale; settling_time_s; settled }

let measure ?(band = 0.01) w =
  Option.map (measure_against ~band w) w.final_value
