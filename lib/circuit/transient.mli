(** Time-domain step-response simulation by trapezoidal integration of the
    descriptor system [(G + sC) x = b(s) u].

    Large-signal limits are outside the linear behavioral model, but the
    small-signal step response still reveals ringing, settling time and
    overshoot — the dynamic quantities designers read next to the phase
    margin.  The closed-loop variant folds the unity-feedback connection
    [u = v_step - v_out] into the matrices, so an under-margined amplifier
    visibly rings and an unstable one diverges. *)

type waveform = {
  time_s : float array;
  vout : float array;
  final_value : float option;
      (** DC target of the response; [None] when the conductance matrix is
          singular (no DC operating point exists).  An absent target used to
          surface as [Float.nan], which poisoned every settling comparison
          downstream. *)
}

type metrics = {
  overshoot_pct : float;  (** peak excursion beyond the final value *)
  settling_time_s : float option;
      (** first time after which the response stays within the band;
          [None] when it never settles inside the simulated window *)
  settled : bool;
}

val step_response :
  ?closed_loop:bool ->
  ?t_end:float ->
  ?points:int ->
  Netlist.t ->
  waveform
(** Unit-step response sampled uniformly.  [closed_loop] defaults to true
    (the standard op-amp settling testbench); [t_end] defaults to 200 time
    constants of the unity-gain frequency when one exists (slow pole/zero
    doublets settle late); [points] defaults to 2000. *)

val measure : ?band:float -> waveform -> metrics option
(** Settling metrics with a [band] (default 0.01, i.e. 1%) around the final
    value.  [None] when the waveform has no DC target to settle towards. *)
