(** Circuit performance records, the figure of merit and spec checking.

    FoM = GBW [MHz] * CL [pF] / Power [mW]  (Eq. 6). *)

type t = {
  gain_db : float;
  gbw_hz : float;
  pm_deg : float;
  power_w : float;
}

val is_finite : t -> bool
(** All four metrics are finite (no NaN, no infinity).  Non-finite records
    must never reach a surrogate model or a best-so-far comparison: NaN
    wins every [>=] guard silently. *)

val fom : t -> cl_f:float -> float
(** [Float.neg_infinity] (strictly worse than any real design, and safe in
    comparisons, unlike NaN) when GBW or power is non-finite. *)

val satisfies : t -> Spec.t -> bool
(** All four Table-I constraints hold; always false for a record that
    fails {!is_finite}. *)

val violation : t -> Spec.t -> float
(** Sum of normalized constraint violations; 0 iff {!satisfies}. *)

val metrics : (string * (t -> float) * (Spec.t -> float * [ `Min | `Max ])) list
(** The four constrained metrics as (name, extractor, spec-bound) triples, in
    a canonical order (Gain dB, GBW Hz, PM deg, Power W).  Used to build one
    surrogate model per metric. *)

val stability_checked_pm : Netlist.t -> float -> float
(** Guard a Bode-derived phase margin with the exact pencil eigenvalues:
    circuits that are open-loop unstable (internal compensation loops can
    oscillate, making the AC sweep meaningless) or unity-feedback unstable
    are forced to a margin of at most -90 degrees. *)

val evaluate_checked :
  ?process:Process.t ->
  Topology.t ->
  sizing:float array ->
  cl_f:float ->
  (t, [ `Singular | `No_convergence | `Non_finite of string ]) result
(** Full evaluation: expand the netlist, run the AC analysis with the
    eigenvalue stability guard, attach static power.  Failures come back
    typed instead of raising or collapsing into an option: [`Singular] for
    a numerically singular system (from any solver layer),
    [`No_convergence] for an eigensolver that escaped the stability guard,
    [`Non_finite field] when a NaN/inf leaked into the named metric.  A
    returned [Ok] record always passes {!is_finite}. *)

val evaluate :
  ?process:Process.t -> Topology.t -> sizing:float array -> cl_f:float -> t option
(** {!evaluate_checked} collapsed to an option for callers that don't
    classify ([None] on any failure). *)

val to_string : t -> cl_f:float -> string
