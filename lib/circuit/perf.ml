type t = {
  gain_db : float;
  gbw_hz : float;
  pm_deg : float;
  power_w : float;
}

let non_finite_field t =
  if not (Float.is_finite t.gain_db) then Some "gain_db"
  else if not (Float.is_finite t.gbw_hz) then Some "gbw_hz"
  else if not (Float.is_finite t.pm_deg) then Some "pm_deg"
  else if not (Float.is_finite t.power_w) then Some "power_w"
  else None

let is_finite t = non_finite_field t = None

(* A non-finite record compares as strictly worse than any real design:
   NaN would silently win every "best >= candidate" comparison (all NaN
   comparisons are false), so the FoM is pinned to -inf instead. *)
let fom t ~cl_f =
  if not (Float.is_finite t.gbw_hz && Float.is_finite t.power_w) then Float.neg_infinity
  else
    let gbw_mhz = t.gbw_hz /. 1e6 in
    let cl_pf = cl_f /. 1e-12 in
    let power_mw = Float.max (t.power_w /. 1e-3) 1e-12 in
    gbw_mhz *. cl_pf /. power_mw

let satisfies t spec =
  is_finite t
  && t.gain_db > spec.Spec.min_gain_db
  && t.gbw_hz > spec.Spec.min_gbw_hz
  && t.pm_deg > spec.Spec.min_pm_deg
  && t.power_w < spec.Spec.max_power_w

let violation t spec =
  let shortfall value bound = Float.max 0.0 ((bound -. value) /. Float.abs bound) in
  let excess value bound = Float.max 0.0 ((value -. bound) /. Float.abs bound) in
  shortfall t.gain_db spec.Spec.min_gain_db
  +. shortfall t.gbw_hz spec.Spec.min_gbw_hz
  +. shortfall t.pm_deg spec.Spec.min_pm_deg
  +. excess t.power_w spec.Spec.max_power_w

let metrics =
  [
    ("gain", (fun t -> t.gain_db), fun s -> (s.Spec.min_gain_db, `Min));
    ("gbw", (fun t -> t.gbw_hz), fun s -> (s.Spec.min_gbw_hz, `Min));
    ("pm", (fun t -> t.pm_deg), fun s -> (s.Spec.min_pm_deg, `Min));
    ("power", (fun t -> t.power_w), fun s -> (s.Spec.max_power_w, `Max));
  ]

(* The Bode-derived phase margin is only meaningful for open-loop-stable
   circuits, and PM > 0 is supposed to certify unity-feedback stability;
   both claims are checked against the exact pencil eigenvalues (internal
   compensation loops can genuinely oscillate).  Designs that fail either
   check get a hard negative margin so the optimizers learn to avoid the
   structures responsible. *)
let stability_checked_pm netlist pm =
  let unstable poles = List.exists (fun p -> p.Complex.re >= 0.0) poles in
  match
    ( unstable (Poles_zeros.open_loop_poles netlist),
      unstable (Poles_zeros.closed_loop_poles netlist) )
  with
  | false, false -> pm
  | true, _ | _, true -> Float.min pm (-90.0)
  | exception Into_linalg.Eig.No_convergence -> Float.min pm (-90.0)

let evaluate_checked ?process topo ~sizing ~cl_f =
  match
    let netlist = Netlist.build ?process topo ~sizing ~cl_f in
    match Ac.analyze netlist with
    | None -> Error `Singular
    | Some ac ->
      let t =
        {
          gain_db = ac.Ac.gain_db;
          gbw_hz = ac.Ac.gbw_hz;
          pm_deg = stability_checked_pm netlist ac.Ac.pm_deg;
          power_w = netlist.Netlist.power_w;
        }
      in
      (match non_finite_field t with
      | Some field -> Error (`Non_finite field)
      | None -> Ok t)
  with
  | r -> r
  | exception Mna.Singular -> Error `Singular
  | exception Into_linalg.Lu.Singular -> Error `Singular
  | exception Into_linalg.Cmat.Singular -> Error `Singular
  | exception Into_linalg.Eig.No_convergence -> Error `No_convergence

let evaluate ?process topo ~sizing ~cl_f =
  Result.to_option (evaluate_checked ?process topo ~sizing ~cl_f)

let to_string t ~cl_f =
  Printf.sprintf "Gain=%.2fdB GBW=%.3fMHz PM=%.2fdeg Power=%.2fuW FoM=%.2f"
    t.gain_db (t.gbw_hz /. 1e6) t.pm_deg (t.power_w *. 1e6) (fom t ~cl_f)
