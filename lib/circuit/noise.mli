(** Small-signal thermal noise analysis.

    Every passive one-port contributes a noise current of power spectral
    density [4 k T Re(Y(jw))] (the Nyquist theorem, which handles plain
    resistors and R-C series branches uniformly); every transconductor
    contributes channel noise [4 k T gamma gm] at its output, with
    [gamma = 2/3].  Per frequency, each source's current is propagated to
    the output through the silenced network and summed in power; the
    input-referred density divides by the signal transfer [|H(jw)|^2].

    Noise is not part of the paper's figure of merit; the module extends
    the characterization suite (and exposes one more classic trade-off:
    small input transconductances buy power at the cost of noise). *)

type result = {
  output_rms_v : float;  (** integrated output noise over the band *)
  input_spot_nv : float option;
      (** input-referred density at the geometric band center, nV/sqrt(Hz);
          [None] when the signal gain at the band center is zero (nothing to
          refer the noise to — previously this divided by zero into NaN) *)
  n_sources : int;
}

val temperature_k : float
(** 300 K. *)

val analyze :
  ?f_lo:float -> ?f_hi:float -> ?points_per_decade:int -> Netlist.t -> result
(** Band defaults to [1 Hz, 100 MHz] with 6 points per decade.
    @raise Mna.Singular when the network is singular in the band. *)
