module Topo_bo = Into_core.Topo_bo
module Sizing = Into_core.Sizing
module Candidates = Into_core.Candidates

type id = Fe_ga | Vgae_bo | Into_oa_r | Into_oa_m | Into_oa

let all = [ Fe_ga; Vgae_bo; Into_oa_r; Into_oa_m; Into_oa ]

let name = function
  | Fe_ga -> "FE-GA"
  | Vgae_bo -> "VGAE-BO"
  | Into_oa_r -> "INTO-OA-r"
  | Into_oa_m -> "INTO-OA-m"
  | Into_oa -> "INTO-OA"

type scale = {
  runs : int;
  n_init : int;
  iterations : int;
  pool : int;
  sizing_init : int;
  sizing_iters : int;
}

let paper_scale =
  { runs = 10; n_init = 10; iterations = 50; pool = 200; sizing_init = 10; sizing_iters = 30 }

let env_int key default =
  match Sys.getenv_opt key with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | Some _ | None -> default)

let smoke_scale =
  { runs = 2; n_init = 4; iterations = 6; pool = 24; sizing_init = 4; sizing_iters = 6 }

let scale_of_env () =
  if Sys.getenv_opt "INTO_OA_FULL" = Some "1" then paper_scale
  else
    {
      runs = env_int "INTO_OA_RUNS" 3;
      n_init = 10;
      iterations = env_int "INTO_OA_ITERS" 25;
      pool = env_int "INTO_OA_POOL" 100;
      sizing_init = 10;
      sizing_iters = env_int "INTO_OA_SIZING_ITERS" 30;
    }

let scale_of_name = function
  | "smoke" -> Some smoke_scale
  | "paper" | "full" -> Some paper_scale
  | "env" | "default" -> Some (scale_of_env ())
  | _ -> None

type trace = {
  steps : Topo_bo.step list;
  best : Into_core.Evaluator.evaluation option;
  total_sims : int;
  rejections : int;
}

let sizing_config scale =
  { Sizing.default_config with Sizing.n_init = scale.sizing_init; n_iter = scale.sizing_iters }

let bo_config scale strategy runner =
  {
    (Topo_bo.default_config strategy) with
    Topo_bo.n_init = scale.n_init;
    iterations = scale.iterations;
    pool = scale.pool;
    sizing = sizing_config scale;
    runner;
  }

let run ?(runner = Into_core.Evaluator.serial_runner) id ~scale ~rng ~spec =
  match id with
  | Fe_ga ->
    let config =
      {
        Into_baselines.Fe_ga.default_config with
        Into_baselines.Fe_ga.population = scale.n_init;
        iterations = scale.iterations;
        sizing = sizing_config scale;
        runner;
      }
    in
    let r = Into_baselines.Fe_ga.run ~config ~rng ~spec () in
    {
      steps = r.Into_baselines.Fe_ga.steps;
      best = r.Into_baselines.Fe_ga.best;
      total_sims = r.Into_baselines.Fe_ga.total_sims;
      rejections = r.Into_baselines.Fe_ga.rejections;
    }
  | Vgae_bo ->
    let config =
      {
        Into_baselines.Vgae_bo.default_config with
        Into_baselines.Vgae_bo.n_init = scale.n_init;
        iterations = scale.iterations;
        pool = scale.pool;
        sizing = sizing_config scale;
        runner;
      }
    in
    let r = Into_baselines.Vgae_bo.run ~config ~rng ~spec () in
    {
      steps = r.Into_baselines.Vgae_bo.steps;
      best = r.Into_baselines.Vgae_bo.best;
      total_sims = r.Into_baselines.Vgae_bo.total_sims;
      rejections = r.Into_baselines.Vgae_bo.rejections;
    }
  | Into_oa_r | Into_oa_m | Into_oa ->
    let strategy =
      match id with
      | Into_oa_r -> Candidates.Random_only
      | Into_oa_m -> Candidates.Mutation_only
      | Fe_ga | Vgae_bo | Into_oa -> Candidates.Mixed
    in
    let r = Topo_bo.run ~config:(bo_config scale strategy runner) ~rng ~spec () in
    {
      steps = r.Topo_bo.steps;
      best = r.Topo_bo.best;
      total_sims = r.Topo_bo.total_sims;
      rejections = r.Topo_bo.rejections;
    }
