(** The five topology-optimization methods compared in Section IV-A, behind
    one interface: FE-GA, VGAE-BO, INTO-OA-r (random candidates only),
    INTO-OA-m (mutation only) and full INTO-OA. *)

type id = Fe_ga | Vgae_bo | Into_oa_r | Into_oa_m | Into_oa

val all : id list
(** In the row order of Table II. *)

val name : id -> string

type scale = {
  runs : int;  (** repetitions per (method, spec) *)
  n_init : int;  (** initial topologies *)
  iterations : int;  (** search iterations *)
  pool : int;  (** candidate pool / acquisition samples *)
  sizing_init : int;
  sizing_iters : int;
}

val paper_scale : scale
(** 10 runs, 10 init, 50 iterations, pool 200, sizing 10+30 — the setup of
    the paper. *)

val smoke_scale : scale
(** 2 runs, 4 init, 6 iterations, pool 24, sizing 4+6 — small enough for a
    CI smoke pass of the whole campaign. *)

val scale_of_env : unit -> scale
(** [paper_scale] overridden by the [INTO_OA_RUNS], [INTO_OA_ITERS],
    [INTO_OA_POOL], [INTO_OA_SIZING_ITERS] environment variables;
    [INTO_OA_FULL=1] forces the paper scale. Defaults to a reduced
    3-run / 25-iteration setting so the bench harness finishes quickly. *)

type trace = {
  steps : Into_core.Topo_bo.step list;
  best : Into_core.Evaluator.evaluation option;
  total_sims : int;
  rejections : int;  (** candidates the static verification gate rejected *)
}

val scale_of_name : string -> scale option
(** ["smoke"], ["paper"]/["full"], or ["env"]/["default"] (the
    {!scale_of_env} setting); [None] for anything else. *)

val run :
  ?runner:Into_core.Evaluator.runner ->
  id ->
  scale:scale ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  trace
(** [runner] (default [Evaluator.serial_runner]) executes every candidate
    evaluation of the method — inject [Into_runtime.Exec.runner] for cached
    and/or parallel evaluation; results are identical either way. *)
