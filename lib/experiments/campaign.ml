module Spec = Into_circuit.Spec
module Evaluator = Into_core.Evaluator
module Exec = Into_runtime.Exec
module Progress = Into_runtime.Progress
module Checkpoint = Into_runtime.Checkpoint

type run = {
  method_id : Methods.id;
  spec : Spec.t;
  run_index : int;
  trace : Methods.trace;
  elapsed_s : float;
}

type t = run list

(* Deterministic per-run seed: mixing through SplitMix keeps seeds of
   neighbouring runs statistically independent. *)
let run_seed ~seed ~method_id ~spec_name ~run_index =
  let h = Hashtbl.hash (seed, Methods.name method_id, spec_name, run_index) in
  let g = Into_util.Splitmix.create h in
  Int64.to_int (Into_util.Splitmix.next_int64 g) land max_int

(* [runs] is deliberately left out of the fingerprint: growing a campaign
   from 2 to 10 runs per cell should resume the first 2 from the journal,
   not discard them. *)
let scale_fingerprint (s : Methods.scale) =
  Printf.sprintf "%d;%d;%d;%d;%d" s.Methods.n_init s.Methods.iterations s.Methods.pool
    s.Methods.sizing_init s.Methods.sizing_iters

let run_key ~seed ~method_id ~spec_name ~run_index ~scale =
  Printf.sprintf "seed=%d|method=%s|spec=%s|run=%d|scale=%s" seed
    (Methods.name method_id) spec_name run_index (scale_fingerprint scale)

(* The payload layout is tied to the [Evaluator.outcome] type buried in
   the trace; unmarshalling a payload written against an older layout
   would be memory-unsafe.  A plain-string version prefix is checked
   before any unmarshal, so stale journals decode as "absent" and the run
   recomputes. *)
let trace_magic = "INTO-OA-TRACE-v2\n"

let encode_trace (trace, elapsed_s) =
  trace_magic ^ Marshal.to_string ((trace, elapsed_s) : Methods.trace * float) []

let decode_trace payload =
  let m = String.length trace_magic in
  if String.length payload < m || not (String.equal (String.sub payload 0 m) trace_magic)
  then None
  else
    match (Marshal.from_string payload m : Methods.trace * float) with
    | v -> Some v
    | exception _ -> None

let execute ?(progress = fun (_ : Progress.event) -> ()) ?runtime ?(methods = Methods.all)
    ?(specs = Spec.all) ~scale ~seed () =
  let runtime = match runtime with Some r -> r | None -> Exec.create () in
  let progress_lock = Mutex.create () in
  let emit event =
    Mutex.lock progress_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock progress_lock)
      (fun () -> progress event);
    Exec.emit runtime event
  in
  let grid =
    Array.of_list
      (List.concat_map
         (fun spec ->
           List.concat_map
             (fun method_id ->
               List.init scale.Methods.runs (fun run_index -> (spec, method_id, run_index)))
             methods)
         specs)
  in
  let total = Array.length grid in
  let checkpoint = Exec.checkpoint runtime in
  (* Methods get a serial runner: parallelism lives at the grid level here,
     and nesting domain pools inside worker domains would oversubscribe. *)
  let inner_runner = Exec.runner ~jobs:1 runtime in
  let one (i, (spec, method_id, run_index)) =
    let label =
      Printf.sprintf "%s / %s / run %d" spec.Spec.name (Methods.name method_id)
        (run_index + 1)
    in
    let key = run_key ~seed ~method_id ~spec_name:spec.Spec.name ~run_index ~scale in
    let restored =
      Option.bind checkpoint (fun c ->
          Option.bind (Checkpoint.find c ~key) decode_trace)
    in
    match restored with
    | Some (trace, elapsed_s) ->
      emit (Progress.Run_restored { label; index = i + 1; total });
      { method_id; spec; run_index; trace; elapsed_s }
    | None -> (
      emit (Progress.Run_started { label; index = i + 1; total });
      let started = Unix.gettimeofday () in
      let rng =
        Into_util.Rng.create
          ~seed:(run_seed ~seed ~method_id ~spec_name:spec.Spec.name ~run_index)
      in
      match Methods.run ~runner:inner_runner method_id ~scale ~rng ~spec with
      | trace ->
        let elapsed_s = Unix.gettimeofday () -. started in
        Option.iter
          (fun c ->
            Checkpoint.append c ~key ~payload:(encode_trace (trace, elapsed_s));
            (* Chaos: tear the journal tail right after this append, as a
               crash mid-write would.  Only a later resume notices; it
               recomputes the torn records deterministically. *)
            Option.iter
              (fun fi ->
                if
                  Into_runtime.Faultin.fires fi Into_runtime.Faultin.Tear_checkpoint
                    ~key ~attempt:0
                then Checkpoint.tear c ~bytes:16)
              (Exec.faultin runtime))
          checkpoint;
        emit (Progress.Run_finished { label; index = i + 1; total; elapsed_s });
        { method_id; spec; run_index; trace; elapsed_s }
      | exception exn ->
        (* One crashed run must not sink the whole grid: record an empty
           trace (never journalled, so a resume re-attempts it) and keep
           going.  Aggregations treat the cell as zero candidates. *)
        let elapsed_s = Unix.gettimeofday () -. started in
        emit
          (Progress.Run_failed
             { label; index = i + 1; total; reason = Printexc.to_string exn });
        {
          method_id;
          spec;
          run_index;
          trace =
            { Methods.steps = []; best = None; total_sims = 0; rejections = 0 };
          elapsed_s;
        })
  in
  Array.to_list
    (Into_runtime.Pool.map ~jobs:(Exec.jobs runtime) one
       (Array.mapi (fun i cell -> (i, cell)) grid))

let runs_of t method_id spec =
  List.filter
    (fun r -> r.method_id = method_id && String.equal r.spec.Spec.name spec.Spec.name)
    t

let methods_present t spec =
  List.filter (fun m -> runs_of t m spec <> []) Methods.all

let successful_runs runs =
  List.filter (fun r -> Option.is_some r.trace.Methods.best) runs

let final_foms runs =
  List.filter_map
    (fun r -> Option.map (fun (e : Evaluator.evaluation) -> e.fom) r.trace.Methods.best)
    runs

let reference_fom t spec =
  let means =
    List.filter_map
      (fun m ->
        match final_foms (runs_of t m spec) with
        | [] -> None
        | foms -> Some (Into_util.Stats.mean foms))
      (methods_present t spec)
  in
  match means with [] -> None | x :: rest -> Some (List.fold_left Float.min x rest)

type row = {
  method_name : string;
  success_rate : int * int;
  final_fom : float option;
  sims_to_ref : float option;
  speedup : float option;
}

let sims_to_ref_of_runs runs ~target =
  let hits =
    List.filter_map
      (fun r -> Curves.sims_to_reach r.trace.Methods.steps ~target)
      runs
  in
  match hits with
  | [] -> None
  | _ -> Some (Into_util.Stats.mean (List.map float_of_int hits))

let table2 t spec =
  let reference = reference_fom t spec in
  let base_rows =
    List.map
      (fun m ->
        let runs = runs_of t m spec in
        let succ = successful_runs runs in
        let final =
          match final_foms runs with [] -> None | foms -> Some (Into_util.Stats.mean foms)
        in
        let sims =
          Option.bind reference (fun target -> sims_to_ref_of_runs runs ~target)
        in
        ( m,
          {
            method_name = Methods.name m;
            success_rate = (List.length succ, List.length runs);
            final_fom = final;
            sims_to_ref = sims;
            speedup = None;
          } ))
      (methods_present t spec)
  in
  let slowest =
    List.fold_left
      (fun acc (_, row) ->
        match row.sims_to_ref with
        | Some s -> Float.max acc s
        | None -> acc)
      0.0 base_rows
  in
  List.map
    (fun (_, row) ->
      let speedup =
        match row.sims_to_ref with
        | Some s when s > 0.0 && slowest > 0.0 -> Some (slowest /. s)
        | Some _ | None -> None
      in
      { row with speedup })
    base_rows

let best_evaluation t method_id spec =
  List.fold_left
    (fun acc r ->
      match (acc, r.trace.Methods.best) with
      | None, b -> b
      | Some (a : Evaluator.evaluation), Some (b : Evaluator.evaluation) ->
        Some (if b.fom > a.fom then b else a)
      | Some _, None -> acc)
    None (runs_of t method_id spec)

let runs_of_method t method_id = List.filter (fun r -> r.method_id = method_id) t

let total_rejections t method_id =
  List.fold_left
    (fun acc r -> acc + r.trace.Methods.rejections)
    0 (runs_of_method t method_id)

let total_candidates t method_id =
  List.fold_left
    (fun acc r -> acc + List.length r.trace.Methods.steps)
    0 (runs_of_method t method_id)

let total_failures t method_id =
  List.fold_left
    (fun acc r ->
      acc
      + List.length
          (List.filter
             (fun (s : Into_core.Topo_bo.step) -> Option.is_some s.Into_core.Topo_bo.failure)
             r.trace.Methods.steps))
    0 (runs_of_method t method_id)

let count_failures_by t key_of =
  let counts = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (s : Into_core.Topo_bo.step) ->
          match s.Into_core.Topo_bo.failure with
          | None -> ()
          | Some f ->
            let key = key_of f in
            (match Hashtbl.find_opt counts key with
            | None ->
              Hashtbl.add counts key 1;
              order := key :: !order
            | Some n -> Hashtbl.replace counts key (n + 1)))
        r.trace.Methods.steps)
    t;
  List.rev_map (fun key -> (key, Hashtbl.find counts key)) !order

let failure_reasons t = count_failures_by t Into_core.Fail.to_string

let failure_classes t =
  (* Canonical class order, zero-count classes dropped. *)
  let by_class = count_failures_by t Into_core.Fail.class_name in
  List.filter_map
    (fun name ->
      Option.map (fun n -> (name, n)) (List.assoc_opt name by_class))
    Into_core.Fail.all_class_names

let fig5_series t spec ~grid_step =
  let max_sims =
    List.fold_left
      (fun acc r -> max acc r.trace.Methods.total_sims)
      grid_step
      (List.filter (fun r -> String.equal r.spec.Spec.name spec.Spec.name) t)
  in
  let grid = Curves.sample_grid ~step:grid_step ~max_sims in
  List.map
    (fun m ->
      let steps = List.map (fun r -> r.trace.Methods.steps) (runs_of t m spec) in
      (Methods.name m, Curves.mean_curve steps ~grid))
    (methods_present t spec)
