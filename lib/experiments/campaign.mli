(** The Section IV-A optimization campaign: every method on every spec for
    several seeded runs, with the aggregations behind Fig. 5, Table II and
    Table III. *)

type run = {
  method_id : Methods.id;
  spec : Into_circuit.Spec.t;
  run_index : int;
  trace : Methods.trace;
  elapsed_s : float;  (** wall clock of this run; restored runs keep the
                          elapsed time of their original execution *)
}

type t = run list

val run_key :
  seed:int ->
  method_id:Methods.id ->
  spec_name:string ->
  run_index:int ->
  scale:Methods.scale ->
  string
(** Checkpoint-journal key of one grid cell.  Includes a fingerprint of
    every scale field except [runs], so a resumed campaign never replays a
    run recorded under different settings, while growing [runs] still
    reuses the runs already journalled. *)

val execute :
  ?progress:(Into_runtime.Progress.event -> unit) ->
  ?runtime:Into_runtime.Exec.t ->
  ?methods:Methods.id list ->
  ?specs:Into_circuit.Spec.t list ->
  scale:Methods.scale ->
  seed:int ->
  unit ->
  t
(** Runs are seeded as [hash (seed, method, spec, run_index)], so any subset
    reproduces the corresponding full-campaign results.

    [runtime] (default: serial, no cache, no checkpoint) supplies the worker
    pool, outcome cache and checkpoint journal; runs execute [Exec.jobs]-way
    parallel across the (spec, method, run) grid with per-run rng streams,
    so results are identical at any job count.  [progress] receives
    structured events (wrap a legacy string callback with
    [Into_runtime.Progress.of_string_renderer]); delivery is serialized.
    Grid cells found in the runtime's checkpoint journal are restored
    without executing and reported as [Run_restored]. *)

val runs_of : t -> Methods.id -> Into_circuit.Spec.t -> run list

type row = {
  method_name : string;
  success_rate : int * int;  (** successes, runs *)
  final_fom : float option;  (** mean over successful runs *)
  sims_to_ref : float option;  (** mean #sims to the reference FoM *)
  speedup : float option;  (** slowest method's sims / this method's sims *)
}

val reference_fom : t -> Into_circuit.Spec.t -> float option
(** The dashed line of Fig. 5: the worst successful method's mean final
    FoM, i.e. a level every method is asked to reach. *)

val table2 : t -> Into_circuit.Spec.t -> row list
(** Table II block for one spec (methods in canonical order). *)

val best_evaluation :
  t -> Methods.id -> Into_circuit.Spec.t -> Into_core.Evaluator.evaluation option
(** Highest-FoM feasible design across all runs — the Table III entry. *)

val total_rejections : t -> Methods.id -> int
(** Candidates the static verification gate rejected across every spec and
    run of one method (surfaced by [Report.lint_summary]). *)

val total_candidates : t -> Methods.id -> int
(** Candidate evaluations attempted (steps recorded) across every spec and
    run of one method. *)

val total_failures : t -> Methods.id -> int
(** Candidates that passed the static gate but whose every sizing attempt
    failed behavioral simulation, across every spec and run of one
    method. *)

val failure_reasons : t -> (string * int) list
(** Distinct simulation-failure reasons ([Fail.to_string] forms, payloads
    included) across the whole campaign with their occurrence counts, in
    first-seen order. *)

val failure_classes : t -> (string * int) list
(** Failure counts grouped by [Fail.class_name], in canonical class order,
    zero-count classes omitted.  Derived from the traces — so restored and
    freshly computed campaigns report identically, unlike the engine's
    live ledger. *)

val fig5_series :
  t -> Into_circuit.Spec.t -> grid_step:int -> (string * (int * float * int) list) list
(** Mean optimization curve per method (see {!Curves.mean_curve}). *)
