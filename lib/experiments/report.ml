module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Table = Into_util.Table
module Evaluator = Into_core.Evaluator

let table1 () =
  let rows =
    List.map
      (fun s ->
        [
          s.Spec.name;
          Printf.sprintf ">%.0f" s.Spec.min_gain_db;
          Printf.sprintf ">%.1f" (s.Spec.min_gbw_hz /. 1e6);
          Printf.sprintf ">%.0f" s.Spec.min_pm_deg;
          Printf.sprintf "<%.0f" (s.Spec.max_power_w *. 1e6);
          Printf.sprintf "%.0f" (s.Spec.cl_f *. 1e12);
        ])
      Spec.all
  in
  "Table I: design specification sets\n"
  ^ Table.render
      ~header:[ "Specs"; "Gain(dB)"; "GBW(MHz)"; "PM(deg)"; "Power(uW)"; "CL(pF)" ]
      rows

let fmt_fom f = if f >= 10000.0 then Printf.sprintf "%.0f" f else Printf.sprintf "%.2f" f

let fig5 campaign spec =
  let series = Campaign.fig5_series campaign spec ~grid_step:200 in
  let grid = match series with [] -> [] | (_, pts) :: _ -> List.map (fun (s, _, _) -> s) pts in
  let header = "# Sim." :: List.map fst series in
  let rows =
    List.map
      (fun sims ->
        string_of_int sims
        :: List.map
             (fun (_, pts) ->
               match List.find_opt (fun (s, _, _) -> s = sims) pts with
               | Some (_, fom, n) when n > 0 -> fmt_fom fom
               | Some _ | None -> "-")
             series)
      grid
  in
  Printf.sprintf
    "Fig. 5 (%s): mean best feasible FoM vs number of simulations\n%s"
    spec.Spec.name
    (Table.render ~header rows)

let table2 campaign =
  let block spec =
    let rows =
      List.map
        (fun (r : Campaign.row) ->
          [
            spec.Spec.name;
            r.method_name;
            Printf.sprintf "%d/%d" (fst r.success_rate) (snd r.success_rate);
            (match r.final_fom with Some f -> fmt_fom f | None -> "-");
            (match r.sims_to_ref with Some s -> Printf.sprintf "%.0f" s | None -> "-");
            (match r.speedup with Some s -> Table.fmt_ratio s | None -> "-");
          ])
        (Campaign.table2 campaign spec)
    in
    rows
  in
  "Table II: behavior-level op-amp optimization results\n"
  ^ Table.render
      ~header:[ "Specs"; "Method"; "Suc. Rate"; "Final FoM"; "# Sim."; "Sim. Speedup" ]
      (List.concat_map block Spec.all)

let lint_summary campaign =
  let methods =
    List.filter
      (fun m -> List.exists (fun r -> r.Campaign.method_id = m) campaign)
      Methods.all
  in
  let rows =
    List.map
      (fun m ->
        [
          Methods.name m;
          string_of_int (Campaign.total_candidates campaign m);
          string_of_int (Campaign.total_rejections campaign m);
          string_of_int (Campaign.total_failures campaign m);
        ])
      methods
  in
  let table =
    "Static verification gate: candidates rejected before simulation\n"
    ^ Table.render ~header:[ "Method"; "Candidates"; "Rejected"; "Failed" ] rows
  in
  let classes =
    match Campaign.failure_classes campaign with
    | [] -> ""
    | rows ->
      "\nfailure classes:\n"
      ^ Table.render
          ~header:[ "Class"; "Count" ]
          (List.map (fun (name, n) -> [ name; string_of_int n ]) rows)
  in
  let reasons =
    match Campaign.failure_reasons campaign with
    | [] -> ""
    | reasons ->
      "\nsimulation failures:\n"
      ^ String.concat "\n"
          (List.map (fun (reason, n) -> Printf.sprintf "  %dx %s" n reason) reasons)
  in
  table ^ classes ^ reasons

let perf_cells p ~cl_f =
  [
    Printf.sprintf "%.2f" p.Perf.gain_db;
    Printf.sprintf "%.2f" (p.Perf.gbw_hz /. 1e6);
    Printf.sprintf "%.2f" p.Perf.pm_deg;
    Printf.sprintf "%.2f" (p.Perf.power_w *. 1e6);
    fmt_fom (Perf.fom p ~cl_f);
  ]

let table3 campaign ~methods =
  let rows =
    List.concat_map
      (fun spec ->
        List.filter_map
          (fun m ->
            Option.map
              (fun (e : Evaluator.evaluation) ->
                (spec.Spec.name :: Methods.name m :: perf_cells e.perf ~cl_f:spec.Spec.cl_f)
                @ [ Into_circuit.Topology.to_string e.topology ])
              (Campaign.best_evaluation campaign m spec))
          methods)
      Spec.all
  in
  "Table III: behavior-level op-amp performance (best design per method)\n"
  ^ Table.render
      ~header:
        [ "Specs"; "Method"; "Gain(dB)"; "GBW(MHz)"; "PM(deg)"; "Power(uW)"; "FoM"; "Topology" ]
      rows

let slot_cell slot sub =
  Printf.sprintf "%s:%s"
    (Into_circuit.Topology.slot_name slot)
    (Into_circuit.Subcircuit.to_string sub)

let gradients (r : Interpret_exp.report) =
  let fmt_opt u = function Some v -> Printf.sprintf "%.3g%s" v u | None -> "-" in
  let rows =
    List.map
      (fun (row : Interpret_exp.slot_row) ->
        [
          slot_cell row.slot row.subcircuit;
          Printf.sprintf "%.4f" row.gbw_gradient;
          fmt_opt "MHz" (Option.map (fun d -> d /. 1e6) row.d_gbw_hz);
          Printf.sprintf "%.4f" row.pm_gradient;
          fmt_opt "deg" row.d_pm_deg;
        ])
      r.Interpret_exp.rows
  in
  Printf.sprintf
    "Section IV-B: WL-GP gradients vs remove-and-resimulate sensitivity\n\
     design: %s\n\
     %s\n\
     sign agreement: %d/%d (gradient sign vs performance loss on removal)"
    (Into_circuit.Topology.to_string r.Interpret_exp.design.Evaluator.topology)
    (Table.render
       ~header:[ "Subcircuit"; "grad GBW"; "d GBW (removed)"; "grad PM"; "d PM (removed)" ]
       rows)
    r.Interpret_exp.agreements r.Interpret_exp.comparisons

let table4 (r : Refine_exp.report) =
  let cl = Spec.s5.Spec.cl_f in
  let case_rows (c : Refine_exp.case) =
    let before_row = (c.Refine_exp.label :: perf_cells c.Refine_exp.before ~cl_f:cl) in
    match c.Refine_exp.outcome.Into_core.Refine.refined with
    | Some (_, _, perf) ->
      let label = "R" ^ String.sub c.Refine_exp.label 1 1 in
      [ before_row; (label :: perf_cells perf ~cl_f:cl) ]
    | None -> [ before_row; [ c.Refine_exp.label ^ " (refinement failed)"; ""; ""; ""; ""; "" ] ]
  in
  let moves (c : Refine_exp.case) =
    List.map
      (fun (m : Into_core.Refine.move) ->
        Printf.sprintf "  %s: %s -> %s (%d sims)" c.Refine_exp.label
          (slot_cell m.Into_core.Refine.slot m.Into_core.Refine.from_sub)
          (Into_circuit.Subcircuit.to_string m.Into_core.Refine.to_sub)
          c.Refine_exp.outcome.Into_core.Refine.n_sims)
      c.Refine_exp.outcome.Into_core.Refine.moves
  in
  "Table IV: behavior-level performance before and after topology refinement (S-5)\n"
  ^ Table.render
      ~header:[ "Circuit"; "Gain(dB)"; "GBW(MHz)"; "PM(deg)"; "Power(uW)"; "FoM" ]
      (List.concat_map case_rows r.Refine_exp.cases)
  ^ "\nrefinement moves:\n"
  ^ String.concat "\n" (List.concat_map moves r.Refine_exp.cases)

let table5 rows =
  let render_row (r : Tlevel_exp.row) =
    match r.Tlevel_exp.transistor with
    | Some p ->
      let cl = (Spec.find r.Tlevel_exp.spec_name).Spec.cl_f in
      (r.Tlevel_exp.spec_name :: r.Tlevel_exp.label :: perf_cells p ~cl_f:cl)
      @ [ (match r.Tlevel_exp.meets_spec with Some true -> "yes" | Some false -> "no" | None -> "-") ]
    | None -> [ r.Tlevel_exp.spec_name; r.Tlevel_exp.label; "-"; "-"; "-"; "-"; "-"; "-" ]
  in
  "Table V: transistor-level op-amp performance\n"
  ^ Table.render
      ~header:
        [ "Specs"; "Method/Circuit"; "Gain(dB)"; "GBW(MHz)"; "PM(deg)"; "Power(uW)"; "FoM"; "meets" ]
      (List.map render_row rows)
