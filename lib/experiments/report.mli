(** Paper-style text rendering of every table and figure. *)

val table1 : unit -> string
(** Table I: the design specification sets. *)

val fig5 : Campaign.t -> Into_circuit.Spec.t -> string
(** Fig. 5 as a text series: mean best-FoM-so-far vs #simulations per
    method. *)

val table2 : Campaign.t -> string
(** Table II: success rate / final FoM / #sims / speedup for all specs. *)

val lint_summary : Campaign.t -> string
(** Static verification gate bookkeeping: per method, the number of
    candidates attempted and the number rejected before simulation. *)

val table3 : Campaign.t -> methods:Methods.id list -> string
(** Table III: metric breakdown of each method's best op-amp per spec. *)

val gradients : Interpret_exp.report -> string
(** Section IV-B: gradient vs sensitivity table. *)

val table4 : Refine_exp.report -> string
(** Table IV: performance before and after refinement (plus the moves). *)

val table5 : Tlevel_exp.row list -> string
(** Table V: transistor-level performance. *)

val perf_cells : Into_circuit.Perf.t -> cl_f:float -> string list
(** [gain; gbw(MHz); pm; power(uW); fom] formatted like the paper. *)
