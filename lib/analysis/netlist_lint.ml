module N = Into_circuit.Netlist

let node_name = function
  | N.Gnd -> "gnd"
  | N.Vin -> "vin"
  | N.N 0 -> "v1"
  | N.N 1 -> "v2"
  | N.N 2 -> "vout"
  | N.N k -> Printf.sprintf "n%d" k

let prim_name = function
  | N.Conductance (a, b, g) ->
    Printf.sprintf "conductance %s-%s (%g S)" (node_name a) (node_name b) g
  | N.Capacitance (a, b, c) ->
    Printf.sprintf "capacitance %s-%s (%g F)" (node_name a) (node_name b) c
  | N.Series_rc (a, b, r, c) ->
    Printf.sprintf "series RC %s-%s (%g ohm, %g F)" (node_name a) (node_name b) r c
  | N.Vccs { ctrl; out; gm; _ } ->
    Printf.sprintf "VCCS %s->%s (%g S)" (node_name ctrl) (node_name out) gm

let prim_nodes = function
  | N.Conductance (a, b, _) | N.Capacitance (a, b, _) | N.Series_rc (a, b, _, _) ->
    [ a; b ]
  | N.Vccs { ctrl; out; _ } -> [ ctrl; out ]

let is_finite v = Float.is_finite v
let is_nan v = Float.is_nan v

(* --- node index range --- *)

let check_ranges nl =
  List.concat_map
    (fun p ->
      List.filter_map
        (function
          | N.N i when i < 0 || i >= nl.N.n_unknowns ->
            Some
              (Diagnostic.make ~subject:(prim_name p) Diagnostic.Node_out_of_range
                 (Printf.sprintf "node index %d outside [0, %d)" i nl.N.n_unknowns))
          | _ -> None)
        (prim_nodes p))
    nl.N.prims

(* --- element values --- *)

let value_diags ~subject ~what v =
  if not (is_finite v) then
    [ Diagnostic.make ~subject Diagnostic.Non_finite_value
        (Printf.sprintf "%s is %g" what v) ]
  else if v < 0.0 then
    [ Diagnostic.make ~subject Diagnostic.Nonpositive_value
        (Printf.sprintf "%s is negative (%g)" what v) ]
  else if v = 0.0 then
    [ Diagnostic.make ~subject Diagnostic.Zero_value (Printf.sprintf "%s is zero" what) ]
  else []

let check_prim_values p =
  let subject = prim_name p in
  match p with
  | N.Conductance (_, _, g) -> value_diags ~subject ~what:"conductance" g
  | N.Capacitance (_, _, c) -> value_diags ~subject ~what:"capacitance" c
  | N.Series_rc (_, _, r, c) ->
    value_diags ~subject ~what:"series resistance" r
    @ value_diags ~subject ~what:"series capacitance" c
  | N.Vccs { gm; pole_hz; _ } ->
    let gm_diags =
      (* gm is signed: negative values are legitimate inverting stages. *)
      if not (is_finite gm) then
        [ Diagnostic.make ~subject Diagnostic.Non_finite_value
            (Printf.sprintf "transconductance is %g" gm) ]
      else if gm = 0.0 then
        [ Diagnostic.make ~subject Diagnostic.Zero_value "transconductance is zero" ]
      else []
    in
    let pole_diags =
      (* [infinity] is the legitimate "no roll-off" pole; NaN and
         non-positive poles poison the frequency response. *)
      if is_nan pole_hz then
        [ Diagnostic.make ~subject Diagnostic.Non_finite_value "gm pole frequency is NaN" ]
      else if pole_hz <= 0.0 then
        [ Diagnostic.make ~subject Diagnostic.Nonpositive_value
            (Printf.sprintf "gm pole frequency is %g Hz" pole_hz) ]
      else []
    in
    gm_diags @ pole_diags

let check_values nl = List.concat_map check_prim_values nl.N.prims

(* --- transconductor instances --- *)

let check_gm_instances nl =
  let positive ~subject ~what v =
    if not (is_finite v) then
      [ Diagnostic.make ~subject Diagnostic.Non_finite_value
          (Printf.sprintf "%s is %g" what v) ]
    else if v <= 0.0 then
      [ Diagnostic.make ~subject Diagnostic.Nonpositive_value
          (Printf.sprintf "%s must be positive (got %g)" what v) ]
    else []
  in
  let per_instance (g : N.gm_instance) =
    let subject = g.N.gm_name in
    positive ~subject ~what:"gm" g.N.gm_value
    @ positive ~subject ~what:"gm/Id" g.N.gm_over_id
    @ positive ~subject ~what:"bias current" g.N.bias_a
  in
  let dups =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (g : N.gm_instance) ->
        if Hashtbl.mem seen g.N.gm_name then
          Some
            (Diagnostic.make ~subject:g.N.gm_name Diagnostic.Duplicate_gm_name
               (Printf.sprintf "transconductor name %S appears more than once" g.N.gm_name))
        else begin
          Hashtbl.add seen g.N.gm_name ();
          None
        end)
      nl.N.gms
  in
  List.concat_map per_instance nl.N.gms @ dups

(* --- graph-level checks ---

   Node encoding for the union-find / BFS: 0 is the anchor (gnd and vin
   share it: both are fixed potentials for DC solvability), unknown i is
   i+1.  Out-of-range nodes are reported by [check_ranges] and skipped
   here. *)

let slot_of nl = function
  | N.Gnd | N.Vin -> Some 0
  | N.N i -> if i >= 0 && i < nl.N.n_unknowns then Some (i + 1) else None

(* Union-find over DC-conductive edges: only finite non-zero conductances
   (and the resistive half of nothing else) carry current at DC.  A series
   RC has Y(0) = 0; capacitors and VCCS outputs contribute no DC
   self-admittance. *)
let check_floating nl =
  let n = nl.N.n_unknowns + 1 in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter
    (fun p ->
      match p with
      | N.Conductance (a, b, g) when is_finite g && g <> 0.0 -> (
        match (slot_of nl a, slot_of nl b) with
        | Some sa, Some sb -> union sa sb
        | _ -> ())
      | _ -> ())
    nl.N.prims;
  let anchor = find 0 in
  List.filter_map
    (fun i ->
      if find (i + 1) <> anchor then
        Some
          (Diagnostic.make ~subject:(node_name (N.N i)) Diagnostic.Floating_node
             (Printf.sprintf "node %s has no DC conductive path to ground"
                (node_name (N.N i))))
      else None)
    (List.init nl.N.n_unknowns (fun i -> i))

(* A VCCS needs its control node driven by something (otherwise that node's
   MNA row is empty) and its output node loaded by at least one passive
   (otherwise the output row carries no admittance). *)
let check_vccs nl =
  let n = nl.N.n_unknowns in
  let passive_count = Array.make (max n 1) 0 in
  let drive_count = Array.make (max n 1) 0 in
  let bump arr = function
    | N.N i when i >= 0 && i < n -> arr.(i) <- arr.(i) + 1
    | _ -> ()
  in
  List.iter
    (fun p ->
      match p with
      | N.Conductance (a, b, _) | N.Capacitance (a, b, _) | N.Series_rc (a, b, _, _) ->
        bump passive_count a;
        bump passive_count b;
        bump drive_count a;
        bump drive_count b
      | N.Vccs { out; _ } -> bump drive_count out)
    nl.N.prims;
  List.concat_map
    (fun p ->
      match p with
      | N.Vccs { ctrl; out; _ } ->
        let subject = prim_name p in
        let ctrl_diags =
          match ctrl with
          | N.Gnd ->
            [ Diagnostic.make ~subject Diagnostic.Dead_element
                "VCCS is controlled by ground (output current is always zero)" ]
          | N.Vin -> []
          | N.N i when i >= 0 && i < n ->
            if drive_count.(i) = 0 then
              [ Diagnostic.make ~subject Diagnostic.Dangling_vccs_ctrl
                  (Printf.sprintf "VCCS senses %s, but no element drives it"
                     (node_name ctrl)) ]
            else []
          | N.N _ -> []
        in
        let out_diags =
          match out with
          | N.Gnd | N.Vin ->
            [ Diagnostic.make ~subject Diagnostic.Dead_element
                "VCCS drives a fixed-potential node (current disappears)" ]
          | N.N i when i >= 0 && i < n ->
            if passive_count.(i) = 0 then
              [ Diagnostic.make ~subject Diagnostic.Dangling_vccs_out
                  (Printf.sprintf "VCCS drives %s, which carries no admittance"
                     (node_name out)) ]
            else []
          | N.N _ -> []
        in
        ctrl_diags @ out_diags
      | _ -> [])
    nl.N.prims

(* Reachability vin -> vout: passives with a non-zero finite value are
   bidirectional signal edges, transconductors are directed ctrl -> out.
   Ground is an AC short and propagates nothing. *)
let check_signal_path nl =
  let n = nl.N.n_unknowns in
  if n < 3 then
    [ Diagnostic.make Diagnostic.No_signal_path
        (Printf.sprintf "netlist has %d unknowns; vout does not exist" n) ]
  else begin
    let adj = Array.make (n + 1) [] in
    (* index 0 = vin, unknown i = i+1; gnd is excluded entirely *)
    let idx = function
      | N.Vin -> Some 0
      | N.N i when i >= 0 && i < n -> Some (i + 1)
      | N.Gnd | N.N _ -> None
    in
    let add_undirected a b =
      match (idx a, idx b) with
      | Some ia, Some ib ->
        adj.(ia) <- ib :: adj.(ia);
        adj.(ib) <- ia :: adj.(ib)
      | _ -> ()
    in
    let add_directed a b =
      match (idx a, idx b) with
      | Some ia, Some ib -> adj.(ia) <- ib :: adj.(ia)
      | _ -> ()
    in
    List.iter
      (fun p ->
        match p with
        | N.Conductance (a, b, v) | N.Capacitance (a, b, v) ->
          if is_finite v && v <> 0.0 then add_undirected a b
        | N.Series_rc (a, b, _, c) -> if is_finite c && c <> 0.0 then add_undirected a b
        | N.Vccs { ctrl; out; gm; _ } ->
          if is_finite gm && gm <> 0.0 then add_directed ctrl out)
      nl.N.prims;
    let visited = Array.make (n + 1) false in
    let rec bfs = function
      | [] -> ()
      | i :: rest ->
        let next =
          List.filter
            (fun j ->
              if visited.(j) then false
              else begin
                visited.(j) <- true;
                true
              end)
            adj.(i)
        in
        bfs (rest @ next)
    in
    visited.(0) <- true;
    bfs [ 0 ];
    if visited.(3) (* vout = N 2 = index 3 *) then []
    else
      [ Diagnostic.make ~subject:"vout" Diagnostic.No_signal_path
          "no signal path from vin to vout through the element graph" ]
  end

let check nl =
  check_ranges nl @ check_values nl @ check_gm_instances nl @ check_vccs nl
  @ check_floating nl @ check_signal_path nl
