(** Typed diagnostics of the static verification layer.

    Every finding of the netlist / topology linters is a {!t}: a stable
    machine-readable {!code}, a {!severity}, a human message and (when
    known) the offending element or node.  [Error]-severity diagnostics
    predict a design that cannot be simulated meaningfully (a structurally
    singular MNA system, an out-of-range node index, a non-finite element
    value, ...) and are used by [Into_core.Evaluator] to reject candidates
    before any LU factorization is attempted. *)

type severity = Error | Warning | Info

type code =
  | Floating_node  (** E101: node with no DC conductive path to gnd/vin *)
  | Dangling_vccs_ctrl  (** E102: VCCS senses a node nothing drives *)
  | Dangling_vccs_out  (** E103: VCCS drives a node with no admittance *)
  | No_signal_path  (** E104: vout is unreachable from vin *)
  | Node_out_of_range  (** E105: node index outside [0, n_unknowns) *)
  | Non_finite_value  (** E106: NaN or infinite element value *)
  | Nonpositive_value  (** E107: negative (or zero where positive required) *)
  | Duplicate_gm_name  (** E108: two transconductor instances share a name *)
  | Index_mismatch  (** E109: to_index/of_index bijection broken *)
  | Rule_violation  (** E110: subcircuit type not admissible in its slot *)
  | Build_failure  (** E111: netlist expansion raised *)
  | Zero_value  (** W201: zero-valued element (dead, but harmless) *)
  | Dead_element  (** W202: element that cannot affect the response *)
  | No_compensation  (** I301: no path around the second stage *)

type t = {
  code : code;
  severity : severity;
  message : string;
  subject : string option;  (** offending element / node / slot *)
}

val code_id : code -> string
(** Stable identifier, e.g. ["E101"]. *)

val severity_of_code : code -> severity
(** The canonical severity of each code (the [E]/[W]/[I] prefix). *)

val describe_code : code -> string
(** One-line description used by the code table ([into_oa lint --codes]). *)

val all_codes : code list
(** Every code, in identifier order. *)

val make : ?subject:string -> code -> string -> t
(** [make code message] with the canonical severity of [code]. *)

val severity_name : severity -> string
val to_string : t -> string
(** e.g. ["E101 error: node n3 has no DC path to ground (at n3)"]. *)

val errors : t list -> t list
val has_errors : t list -> bool
val count : severity -> t list -> int

val by_severity : t list -> t list
(** Stable sort, most severe first. *)
