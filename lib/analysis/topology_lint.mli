(** Static audits over a topology (before any netlist is expanded).

    The rule set R is enforced by the [Topology] smart constructors, so the
    audit exists to catch invariant breakage (a future representation
    change, hand-decoded indices) and to attach designer-facing Info
    diagnostics to structurally suspicious but legal designs. *)

val check : Into_circuit.Topology.t -> Diagnostic.t list

val check_index : int -> Diagnostic.t list
(** Decode a design-space index, audit the decode/encode bijection
    ({!Diagnostic.Index_mismatch}) and run {!check}.  Out-of-range indices
    yield a single [Index_mismatch] error instead of raising. *)
