(** Whole-design-space lint: statically verify all 30625 topologies.

    Each index is decoded, audited ({!Topology_lint}), expanded into a
    netlist at the schema's default sizing point, and checked
    ({!Netlist_lint}).  Nothing is simulated; the sweep proves that every
    candidate the optimizer can ever draw reaches the solver well-formed. *)

type report = {
  checked : int;  (** topologies linted (= space size for a full sweep) *)
  errors : int;  (** total Error-severity diagnostics *)
  warnings : int;
  infos : int;
  failures : (int * Diagnostic.t) list;
      (** (index, diagnostic) for Error findings, capped at [max_failures] *)
}

val check_index : ?cl_f:float -> int -> Diagnostic.t list
(** Topology audit plus default-sizing netlist lint for one index.
    [cl_f] is the load capacitance of the probe netlist (default 10 pF). *)

val run : ?cl_f:float -> ?max_failures:int -> unit -> report
(** Lint every index of the design space (default [max_failures] 20). *)

val summary : report -> string
(** Multi-line human-readable report. *)
