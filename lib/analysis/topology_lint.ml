module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit

let check topo =
  let rule_diags =
    List.filter_map
      (fun slot ->
        let sub = Topology.get topo slot in
        if Array.exists (Subcircuit.equal sub) (Topology.allowed slot) then None
        else
          Some
            (Diagnostic.make ~subject:(Topology.slot_name slot) Diagnostic.Rule_violation
               (Printf.sprintf "subcircuit %s is not admissible in slot %s"
                  (Subcircuit.to_string sub) (Topology.slot_name slot))))
      Topology.slots
  in
  let structure_diags =
    (* Purely informational: a three-stage amplifier with no path bridging
       the stages (no v1-vout compensation, no feedforward) is legal but
       rarely stabilizable; designers reading a lint report want the hint. *)
    if
      Subcircuit.equal (Topology.get topo Topology.V1_vout) Subcircuit.No_conn
      && Subcircuit.equal (Topology.get topo Topology.Vin_vout) Subcircuit.No_conn
    then
      [ Diagnostic.make ~subject:"v1-vout" Diagnostic.No_compensation
          "no compensation (v1-vout) or feedforward (vin-vout) path is present" ]
    else []
  in
  rule_diags @ structure_diags

let check_index idx =
  if idx < 0 || idx >= Topology.space_size then
    [ Diagnostic.make Diagnostic.Index_mismatch
        (Printf.sprintf "index %d outside [0, %d)" idx Topology.space_size) ]
  else
    let topo = Topology.of_index idx in
    let roundtrip = Topology.to_index topo in
    let bijection =
      if roundtrip <> idx then
        [ Diagnostic.make Diagnostic.Index_mismatch
            (Printf.sprintf "of_index %d re-encodes to %d" idx roundtrip) ]
      else []
    in
    bijection @ check topo
