module Topology = Into_circuit.Topology
module Params = Into_circuit.Params
module Netlist = Into_circuit.Netlist

type report = {
  checked : int;
  errors : int;
  warnings : int;
  infos : int;
  failures : (int * Diagnostic.t) list;
}

let default_cl_f = 10e-12

let netlist_diags ~cl_f topo =
  match
    let schema = Params.schema topo in
    let sizing = Params.denormalize schema (Params.default_point schema) in
    Netlist.build topo ~sizing ~cl_f
  with
  | nl -> Netlist_lint.check nl
  | exception exn ->
    [ Diagnostic.make Diagnostic.Build_failure
        (Printf.sprintf "netlist expansion raised %s" (Printexc.to_string exn)) ]

let check_index ?(cl_f = default_cl_f) idx =
  let topo_diags = Topology_lint.check_index idx in
  if Diagnostic.has_errors topo_diags then topo_diags
  else topo_diags @ netlist_diags ~cl_f (Topology.of_index idx)

let run ?(cl_f = default_cl_f) ?(max_failures = 20) () =
  let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
  let failures = ref [] in
  for idx = 0 to Topology.space_size - 1 do
    List.iter
      (fun (d : Diagnostic.t) ->
        match d.Diagnostic.severity with
        | Diagnostic.Error ->
          incr errors;
          if List.length !failures < max_failures then failures := (idx, d) :: !failures
        | Diagnostic.Warning -> incr warnings
        | Diagnostic.Info -> incr infos)
      (check_index ~cl_f idx)
  done;
  {
    checked = Topology.space_size;
    errors = !errors;
    warnings = !warnings;
    infos = !infos;
    failures = List.rev !failures;
  }

let summary r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "linted %d topologies: %d errors, %d warnings, %d infos\n" r.checked
       r.errors r.warnings r.infos);
  List.iter
    (fun (idx, d) ->
      Buffer.add_string buf (Printf.sprintf "  topology %d: %s\n" idx (Diagnostic.to_string d)))
    r.failures;
  Buffer.add_string buf
    (if r.errors = 0 then "design space is statically well-formed"
     else Printf.sprintf "%d Error-severity findings" r.errors);
  Buffer.contents buf
