(** Static well-formedness checks over an MNA-ready netlist.

    Purely structural: no matrix is assembled and no factorization is
    attempted.  The checks prove, before simulation, the properties whose
    violation would otherwise surface as a singular LU factorization or a
    silent NaN deep inside the optimization loop:

    - every referenced node index lies inside [0, n_unknowns);
    - every node has a DC conductive path to ground or to the driven input
      (otherwise the DC MNA system is structurally singular);
    - no VCCS senses a node that nothing drives, and none drives a node
      carrying no admittance;
    - a signal path exists from [vin] to [vout] (passives are bidirectional
      edges, transconductors are directed control->output edges; ground
      does not propagate signal);
    - element values are finite and correctly signed, transconductor
      instances carry positive gm / gm/Id / bias values;
    - transconductor instance names are unique. *)

val node_name : Into_circuit.Netlist.node -> string
(** ["gnd"], ["vin"], ["v1"], ["v2"], ["vout"], ["n3"], ... *)

val check : Into_circuit.Netlist.t -> Diagnostic.t list
(** All diagnostics, in deterministic order (element order of the netlist,
    then graph-level findings). *)
