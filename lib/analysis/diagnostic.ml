type severity = Error | Warning | Info

type code =
  | Floating_node
  | Dangling_vccs_ctrl
  | Dangling_vccs_out
  | No_signal_path
  | Node_out_of_range
  | Non_finite_value
  | Nonpositive_value
  | Duplicate_gm_name
  | Index_mismatch
  | Rule_violation
  | Build_failure
  | Zero_value
  | Dead_element
  | No_compensation

type t = {
  code : code;
  severity : severity;
  message : string;
  subject : string option;
}

let code_id = function
  | Floating_node -> "E101"
  | Dangling_vccs_ctrl -> "E102"
  | Dangling_vccs_out -> "E103"
  | No_signal_path -> "E104"
  | Node_out_of_range -> "E105"
  | Non_finite_value -> "E106"
  | Nonpositive_value -> "E107"
  | Duplicate_gm_name -> "E108"
  | Index_mismatch -> "E109"
  | Rule_violation -> "E110"
  | Build_failure -> "E111"
  | Zero_value -> "W201"
  | Dead_element -> "W202"
  | No_compensation -> "I301"

let severity_of_code = function
  | Floating_node | Dangling_vccs_ctrl | Dangling_vccs_out | No_signal_path
  | Node_out_of_range | Non_finite_value | Nonpositive_value | Duplicate_gm_name
  | Index_mismatch | Rule_violation | Build_failure ->
    Error
  | Zero_value | Dead_element -> Warning
  | No_compensation -> Info

let describe_code = function
  | Floating_node -> "node has no DC conductive path to ground or the input source"
  | Dangling_vccs_ctrl -> "VCCS control node is driven by no element (empty MNA row)"
  | Dangling_vccs_out -> "VCCS output node carries no admittance (singular MNA)"
  | No_signal_path -> "vout is unreachable from vin through the element graph"
  | Node_out_of_range -> "node index outside [0, n_unknowns)"
  | Non_finite_value -> "element value is NaN or infinite"
  | Nonpositive_value -> "element value is negative, or zero where a positive value is required"
  | Duplicate_gm_name -> "two transconductor instances share a name"
  | Index_mismatch -> "design-space index bijection broken (of_index/to_index disagree)"
  | Rule_violation -> "subcircuit type is not admissible in its slot (rule set R)"
  | Build_failure -> "netlist expansion raised instead of producing primitives"
  | Zero_value -> "zero-valued element contributes nothing to the response"
  | Dead_element -> "element is structurally unable to affect the response"
  | No_compensation -> "no compensation or feedforward path bridges the input and output stages"

let all_codes =
  [
    Floating_node; Dangling_vccs_ctrl; Dangling_vccs_out; No_signal_path;
    Node_out_of_range; Non_finite_value; Nonpositive_value; Duplicate_gm_name;
    Index_mismatch; Rule_violation; Build_failure; Zero_value; Dead_element;
    No_compensation;
  ]

let make ?subject code message =
  { code; severity = severity_of_code code; message; subject }

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let to_string d =
  let where = match d.subject with None -> "" | Some s -> Printf.sprintf " (at %s)" s in
  Printf.sprintf "%s %s: %s%s" (code_id d.code) (severity_name d.severity) d.message where

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity ds =
  List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity)) ds
