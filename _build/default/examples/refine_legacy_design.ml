(* Topology refinement of a trusted legacy design (Section IV-C workflow).

   The C1 op-amp (a published feedforward three-stage scheme) was designed
   for a 10 pF load; asked to drive S-5's 10 nF it misses the spec.  Instead
   of re-synthesizing from scratch, INTO-OA refines it: the WL-GP gradient
   points at the most harmful subcircuit, a replacement is chosen by the
   surrogate, and only the modified part is resized.

   Run with: dune exec examples/refine_legacy_design.exe *)

module Spec = Into_circuit.Spec
module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Perf = Into_circuit.Perf
module Sizing = Into_core.Sizing
module Topo_bo = Into_core.Topo_bo
module Candidates = Into_core.Candidates
module Refine = Into_core.Refine
module Seeds = Into_experiments.Seeds

let () =
  let rng = Into_util.Rng.create ~seed:99 in
  let c1 = Seeds.c1 in
  Printf.printf "Legacy design C1: %s\n" (Topology.to_string c1);

  (* Size it for the load it was published with. *)
  let sizing =
    match Sizing.best (Sizing.optimize ~rng ~spec:Spec.s1 c1) with
    | Some o -> o.Sizing.sizing
    | None -> failwith "seed sizing failed"
  in
  (match Perf.evaluate c1 ~sizing ~cl_f:Spec.s1.Spec.cl_f with
  | Some p -> Printf.printf "As designed (10 pF):  %s\n" (Perf.to_string p ~cl_f:Spec.s1.Spec.cl_f)
  | None -> ());
  (match Perf.evaluate c1 ~sizing ~cl_f:Spec.s5.Spec.cl_f with
  | Some p ->
    Printf.printf "Driving S-5 (10 nF):  %s  -> meets S-5: %b\n"
      (Perf.to_string p ~cl_f:Spec.s5.Spec.cl_f)
      (Perf.satisfies p Spec.s5)
  | None -> ());

  (* Train surrogates with a short INTO-OA run on S-5 (the models the paper
     reuses from optimization). *)
  print_endline "\nTraining WL-GP surrogates with a short INTO-OA run on S-5...";
  let config =
    { (Topo_bo.default_config Candidates.Mixed) with Topo_bo.iterations = 15; pool = 100 }
  in
  let bo = Topo_bo.run ~config ~rng ~spec:Spec.s5 () in
  Printf.printf "  (%d simulations; surrogates for %s)\n" bo.Topo_bo.total_sims
    (String.concat ", " (List.map fst bo.Topo_bo.models));

  (* Refine. *)
  let outcome = Refine.refine ~models:bo.Topo_bo.models ~rng ~spec:Spec.s5 ~sizing c1 in
  (match outcome.Refine.critical_metric with
  | Some m -> Printf.printf "\nCritical metric: %s\n" m
  | None -> print_endline "\nDesign already meets S-5.");
  List.iter
    (fun (m : Refine.move) ->
      Printf.printf "  move: %s at %s -> %s  %s\n"
        (Subcircuit.to_string m.Refine.from_sub)
        (Topology.slot_name m.Refine.slot)
        (Subcircuit.to_string m.Refine.to_sub)
        (match m.Refine.achieved with
        | Some p -> Perf.to_string p ~cl_f:Spec.s5.Spec.cl_f
        | None -> "(simulation failed)"))
    outcome.Refine.moves;
  Printf.printf "Refinement spent %d simulations.\n" outcome.Refine.n_sims;
  match outcome.Refine.refined with
  | Some (topo, _, perf) ->
    Printf.printf "\nRefined topology R1: %s\n  %s\n  meets S-5: %b\n"
      (Topology.to_string topo)
      (Perf.to_string perf ~cl_f:Spec.s5.Spec.cl_f)
      (Perf.satisfies perf Spec.s5)
  | None -> print_endline "\nRefinement did not reach feasibility within its move budget."
