(* Quickstart: describe a classic nested-Miller topology, size it for the
   S-1 specification with the inner BO, inspect the result and map it to
   transistors.

   Run with: dune exec examples/quickstart.exe *)

module Topology = Into_circuit.Topology
module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Sizing = Into_core.Sizing
module Params = Into_circuit.Params

let () =
  let spec = Spec.s1 in
  Printf.printf "Specification: %s\n\n" (Spec.to_string spec);

  (* 1. A topology is five variable-subcircuit choices around the fixed
     three-stage backbone; nmc () is the classic series-RC Miller scheme. *)
  let topo = Topology.nmc () in
  Printf.printf "Topology under study:\n  %s\n\n" (Topology.to_string topo);

  (* 2. Size it: 10 random starts + 30 BO iterations = 40 AC simulations. *)
  let rng = Into_util.Rng.create ~seed:5 in
  let result = Sizing.optimize ~rng ~spec topo in
  Printf.printf "Sizing used %d simulations.\n" result.Sizing.n_sims;
  (match Sizing.best result with
  | None -> print_endline "No sizing simulated successfully."
  | Some o ->
    let feasible = Perf.satisfies o.Sizing.perf spec in
    Printf.printf "Best point (%s):\n  %s\n\n"
      (if feasible then "meets the spec" else "infeasible")
      (Perf.to_string o.Sizing.perf ~cl_f:spec.Spec.cl_f);
    let schema = Params.schema topo in
    print_endline "Physical parameter values:";
    List.iteri
      (fun i p ->
        Printf.printf "  %-14s %.4g\n" p.Params.name o.Sizing.sizing.(i))
      (Params.params schema);

    (* 3. Map the behavioral design to transistors via the gm/id tables. *)
    print_newline ();
    match
      Into_transistor.Tlevel.evaluate topo ~sizing:o.Sizing.sizing ~cl_f:spec.Spec.cl_f
    with
    | None -> print_endline "Transistor-level simulation failed."
    | Some tl ->
      print_endline "Transistor-level implementation:";
      List.iter
        (fun impl -> Printf.printf "  %s\n" (Into_transistor.Mapping.describe impl))
        tl.Into_transistor.Tlevel.impls;
      Printf.printf "Transistor-level performance:\n  %s\n"
        (Perf.to_string tl.Into_transistor.Tlevel.perf ~cl_f:spec.Spec.cl_f))
