examples/optimize_custom_spec.ml: Into_circuit Into_core Into_util List Printf
