examples/quickstart.ml: Array Into_circuit Into_core Into_transistor Into_util List Printf
