examples/characterize.mli:
