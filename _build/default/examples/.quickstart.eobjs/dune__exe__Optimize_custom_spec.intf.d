examples/optimize_custom_spec.mli:
