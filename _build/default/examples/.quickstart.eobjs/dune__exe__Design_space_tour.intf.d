examples/design_space_tour.mli:
