examples/refine_legacy_design.ml: Into_circuit Into_core Into_experiments Into_util List Printf String
