examples/design_space_tour.ml: Array Into_circuit Into_graph Into_util List Printf String
