examples/characterize.ml: Array Complex Into_circuit Into_core Into_util List Printf String
