examples/refine_legacy_design.mli:
