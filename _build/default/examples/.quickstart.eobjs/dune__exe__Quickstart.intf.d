examples/quickstart.mli:
