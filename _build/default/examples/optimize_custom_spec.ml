(* Full INTO-OA topology optimization on a custom specification, with the
   interpretability report of Section IV-B on the winning design.

   The spec asks for a fast, low-power amplifier driving 20 pF — a
   scenario from the paper's motivation: no template library covers every
   load/power corner, so the topology itself is synthesized.

   Run with: dune exec examples/optimize_custom_spec.exe *)

module Spec = Into_circuit.Spec
module Topology = Into_circuit.Topology
module Perf = Into_circuit.Perf
module Topo_bo = Into_core.Topo_bo
module Candidates = Into_core.Candidates
module Evaluator = Into_core.Evaluator
module Attribution = Into_core.Attribution

let custom_spec =
  {
    Spec.name = "custom";
    min_gain_db = 80.0;
    min_gbw_hz = 3e6;
    min_pm_deg = 60.0;
    max_power_w = 300e-6;
    cl_f = 20e-12;
  }

let () =
  Printf.printf "Optimizing for: %s\n\n" (Spec.to_string custom_spec);
  let rng = Into_util.Rng.create ~seed:7 in
  let config =
    { (Topo_bo.default_config Candidates.Mixed) with Topo_bo.iterations = 20; pool = 100 }
  in
  let result = Topo_bo.run ~config ~rng ~spec:custom_spec () in
  Printf.printf "Spent %d circuit simulations on %d topologies.\n\n"
    result.Topo_bo.total_sims
    (List.length result.Topo_bo.steps);

  print_endline "Optimization trace (best feasible FoM so far):";
  List.iter
    (fun (s : Topo_bo.step) ->
      match s.Topo_bo.best_fom_so_far with
      | Some f when s.Topo_bo.iteration mod 5 = 0 && s.Topo_bo.iteration > 0 ->
        Printf.printf "  iteration %2d  #sim %4d  best FoM %8.1f\n" s.Topo_bo.iteration
          s.Topo_bo.cumulative_sims f
      | Some _ | None -> ())
    result.Topo_bo.steps;

  match result.Topo_bo.best with
  | None -> print_endline "\nNo feasible design found at this tiny budget."
  | Some best ->
    Printf.printf "\nBest design: %s\n  %s\n" (Topology.to_string best.Evaluator.topology)
      (Perf.to_string best.Evaluator.perf ~cl_f:custom_spec.Spec.cl_f);

    (* The full designer-facing report: gradients, critical structures,
       poles/zeros and sensitivity analysis in one artifact. *)
    print_newline ();
    print_endline
      (Into_core.Design_report.render ~models:result.Topo_bo.models ~spec:custom_spec
         ~sizing:best.Evaluator.sizing best.Evaluator.topology)
