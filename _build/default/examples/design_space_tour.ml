(* A tour of the behavior-level design space and the WL graph machinery:
   enumeration, circuit graphs, WL features, kernel similarities and a text
   Bode plot from the AC engine.

   Run with: dune exec examples/design_space_tour.exe *)

module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Params = Into_circuit.Params
module Netlist = Into_circuit.Netlist
module Ac = Into_circuit.Ac
module Labeled_graph = Into_graph.Labeled_graph
module Circuit_graph = Into_graph.Circuit_graph
module Wl = Into_graph.Wl
module Wl_kernel = Into_graph.Wl_kernel

let () =
  Printf.printf "The design space holds %d topologies: " Topology.space_size;
  Printf.printf "%s slots per topology.\n"
    (String.concat " x "
       (List.map
          (fun s -> string_of_int (Array.length (Topology.allowed s)))
          Topology.slots));
  List.iter
    (fun slot ->
      Printf.printf "  %-9s: %s\n" (Topology.slot_name slot)
        (String.concat ", "
           (List.map Subcircuit.to_string (Array.to_list (Topology.allowed slot)))))
    Topology.slots;

  (* The circuit graph of Section III-A. *)
  let topo = Topology.nmc () in
  let nmc_with_ff =
    Topology.set topo Topology.Vin_vout (Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))
  in
  Printf.printf "\nCircuit graph of %s:\n%s\n" (Topology.to_string topo)
    (Labeled_graph.to_string (Circuit_graph.build topo));

  (* WL features at increasing radius. *)
  let dict = Wl.create_dict () in
  let g = Circuit_graph.build topo in
  List.iter
    (fun h ->
      let feats = Wl.extract dict ~h g in
      Printf.printf "\nWL features at h=%d (%d distinct):\n" h
        (List.length (Wl.to_list feats));
      List.iter
        (fun (id, count) ->
          if Wl.feature_iteration dict id = h then
            Printf.printf "  %dx %s\n" count (Wl.describe dict id))
        (Wl.to_list feats))
    [ 0; 1 ];

  (* Kernel similarity behaves like structural similarity. *)
  let f t = Wl.extract dict ~h:2 (Circuit_graph.build t) in
  let similar = Topology.set topo Topology.V1_gnd (Subcircuit.Passive Subcircuit.Single_c) in
  let rng = Into_util.Rng.create ~seed:5 in
  let distant = Topology.random rng in
  Printf.printf "\nNormalized WL kernel:\n";
  Printf.printf "  k(nmc, nmc)             = %.3f\n" (Wl_kernel.normalized (f topo) (f topo));
  Printf.printf "  k(nmc, nmc + C shunt)   = %.3f\n" (Wl_kernel.normalized (f topo) (f similar));
  Printf.printf "  k(nmc, nmc + ff gm)     = %.3f\n"
    (Wl_kernel.normalized (f topo) (f nmc_with_ff));
  Printf.printf "  k(nmc, random topology) = %.3f  (%s)\n"
    (Wl_kernel.normalized (f topo) (f distant))
    (Topology.to_string distant);

  (* A coarse text Bode plot of the sized NMC amplifier. *)
  let schema = Params.schema topo in
  let sizing = Params.denormalize schema (Params.default_point schema) in
  let nl = Netlist.build topo ~sizing ~cl_f:10e-12 in
  let freqs = Array.init 13 (fun i -> 10.0 ** float_of_int (i - 2)) in
  print_endline "\nBode response of the default-sized NMC amplifier:";
  print_endline "  freq (Hz)   |A| (dB)   phase (deg)";
  Array.iter
    (fun (fr, mag, ph) -> Printf.printf "  %9.0e  %9.2f  %10.1f\n" fr mag ph)
    (Ac.bode nl ~freqs)
