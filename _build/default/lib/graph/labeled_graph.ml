type t = {
  labels : string array;
  adj : int list array;
  edge_list : (int * int) list;
}

let create ~labels ~edges =
  let n = Array.length labels in
  let canon (a, b) =
    if a < 0 || a >= n || b < 0 || b >= n then
      invalid_arg "Labeled_graph.create: endpoint out of range";
    if a = b then invalid_arg "Labeled_graph.create: self-loop";
    if a < b then (a, b) else (b, a)
  in
  let canonical = List.sort_uniq compare (List.map canon edges) in
  if List.length canonical <> List.length edges then
    invalid_arg "Labeled_graph.create: duplicate edge";
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    canonical;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { labels = Array.copy labels; adj; edge_list = canonical }

let n_nodes t = Array.length t.labels
let n_edges t = List.length t.edge_list
let label t i = t.labels.(i)
let labels t = Array.copy t.labels
let neighbors t i = t.adj.(i)
let edges t = t.edge_list
let degree t i = List.length t.adj.(i)
let has_edge t a b = List.mem (min a b, max a b) t.edge_list

let to_string t =
  let node i =
    Printf.sprintf "  %d:%s -> [%s]" i t.labels.(i)
      (String.concat "; " (List.map string_of_int t.adj.(i)))
  in
  String.concat "\n"
    (Printf.sprintf "graph with %d nodes, %d edges" (n_nodes t) (n_edges t)
    :: List.init (n_nodes t) node)
