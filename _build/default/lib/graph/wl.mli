(** Weisfeiler-Lehman feature extraction (Section III-B, Fig. 4).

    Iteration 0 counts node labels; every further iteration relabels each
    node with a compressed symbol for (own label, sorted neighbor labels)
    and adds the new counts.  The feature vector after [h] iterations is the
    concatenation of the counts of all iterations [0..h].

    A {!dict} interns label patterns into dense integer feature ids shared
    by all graphs of an optimization run, so feature vectors from different
    graphs are directly comparable; ids also map back to a human-readable
    description of the circuit structure they stand for, which is what makes
    the GP gradient interpretable. *)

type dict

val create_dict : unit -> dict
val dict_size : dict -> int

val describe : dict -> int -> string
(** Human-readable pattern, e.g. ["RCs(v1(..), vout(..))"]: the subtree of
    circuit structure the feature counts. *)

val feature_iteration : dict -> int -> int
(** The WL iteration a feature id was born at (0 = plain node label). *)

type features
(** Sparse non-negative count vector over feature ids. *)

val extract : dict -> h:int -> Labeled_graph.t -> features
(** Feature vector of a graph with [h] WL iterations ([h >= 0]). *)

val node_feature_ids : dict -> h:int -> Labeled_graph.t -> int array array
(** [ids.(k).(v)] is the feature id assigned to graph node [v] at iteration
    [k] (for [k] in [0..h]); row [k] has one entry per node.  Feature
    [ids.(k).(v)] is exactly the structure rooted at [v] with radius [k]. *)

val count : features -> int -> int
(** Multiplicity of a feature id (0 when absent). *)

val to_list : features -> (int * int) list
(** Sorted (feature id, count) pairs with positive counts. *)

val dot : features -> features -> float
(** Inner product of count vectors — the raw WL kernel value (Eq. 2). *)

val norm : features -> float
(** [sqrt (dot f f)]. *)
