let kernel = Wl.dot

let normalized a b =
  let na = Wl.norm a and nb = Wl.norm b in
  if na = 0.0 || nb = 0.0 then 0.0 else Wl.dot a b /. (na *. nb)

let gram ?(normalize = true) feats =
  let n = Array.length feats in
  let k = if normalize then normalized else kernel in
  Into_linalg.Mat.init n n (fun i j -> if j < i then 0.0 else k feats.(i) feats.(j))
  |> fun upper ->
  Into_linalg.Mat.init n n (fun i j ->
      if j >= i then Into_linalg.Mat.get upper i j else Into_linalg.Mat.get upper j i)

let cross ?(normalize = true) feats q =
  let k = if normalize then normalized else kernel in
  Array.map (fun f -> k f q) feats
