(** Undirected graphs with string-labeled nodes.

    This is the representation the WL kernel operates on.  Nodes are dense
    integers; parallel edges and self-loops are rejected at construction. *)

type t

val create : labels:string array -> edges:(int * int) list -> t
(** @raise Invalid_argument on an out-of-range endpoint, a self-loop or a
    duplicate edge. *)

val n_nodes : t -> int
val n_edges : t -> int
val label : t -> int -> string
val labels : t -> string array
val neighbors : t -> int -> int list
(** Sorted adjacency list. *)

val edges : t -> (int * int) list
(** Each undirected edge once, with [fst < snd], sorted. *)

val degree : t -> int -> int
val has_edge : t -> int -> int -> bool
val to_string : t -> string
(** Multi-line dump for debugging and examples. *)
