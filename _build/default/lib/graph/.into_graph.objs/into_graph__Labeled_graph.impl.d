lib/graph/labeled_graph.ml: Array List Printf String
