lib/graph/wl.ml: Array Hashtbl Labeled_graph List Option Printf String
