lib/graph/circuit_graph.mli: Into_circuit Labeled_graph
