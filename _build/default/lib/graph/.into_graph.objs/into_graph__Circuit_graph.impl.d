lib/graph/circuit_graph.ml: Array Into_circuit Labeled_graph List
