lib/graph/labeled_graph.mli:
