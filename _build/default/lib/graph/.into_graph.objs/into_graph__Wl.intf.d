lib/graph/wl.mli: Labeled_graph
