lib/graph/wl_kernel.mli: Into_linalg Wl
