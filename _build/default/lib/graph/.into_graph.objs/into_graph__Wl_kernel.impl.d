lib/graph/wl_kernel.ml: Array Into_linalg Wl
