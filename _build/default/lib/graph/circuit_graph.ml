module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit

type node_origin =
  | Circuit_node of string
  | Fixed_stage of int
  | Variable_slot of Topology.slot

(* Circuit-node numbering inside the graph. *)
let vin = 0
let v1 = 1
let v2 = 2
let gnd = 3
let vout = 4

let circuit_node_labels = [| "vin"; "v1"; "v2"; "gnd"; "vout" |]

let stage_info = [ (1, "-gm1", vin, v1); (2, "+gm2", v1, v2); (3, "-gm3", v2, vout) ]

let slot_endpoints = function
  | Topology.Vin_v2 -> (vin, v2)
  | Topology.Vin_vout -> (vin, vout)
  | Topology.V1_vout -> (v1, vout)
  | Topology.V1_gnd -> (v1, gnd)
  | Topology.V2_gnd -> (v2, gnd)

let connected_slots topo =
  List.filter
    (fun slot -> not (Subcircuit.equal (Topology.get topo slot) Subcircuit.No_conn))
    Topology.slots

let build topo =
  let slots = connected_slots topo in
  let labels =
    Array.of_list
      (Array.to_list circuit_node_labels
      @ List.map (fun (_, lbl, _, _) -> lbl) stage_info
      @ List.map (fun slot -> Subcircuit.label (Topology.get topo slot)) slots)
  in
  let stage_edges =
    List.concat
      (List.mapi
         (fun i (_, _, a, b) ->
           let node = 5 + i in
           [ (a, node); (node, b) ])
         stage_info)
  in
  let slot_edges =
    List.concat
      (List.mapi
         (fun i slot ->
           let node = 8 + i in
           let a, b = slot_endpoints slot in
           [ (a, node); (node, b) ])
         slots)
  in
  Labeled_graph.create ~labels ~edges:(stage_edges @ slot_edges)

let origins topo =
  let slots = connected_slots topo in
  Array.of_list
    (Array.to_list (Array.map (fun n -> Circuit_node n) circuit_node_labels)
    @ List.map (fun (i, _, _, _) -> Fixed_stage i) stage_info
    @ List.map (fun slot -> Variable_slot slot) slots)

let slot_node topo slot =
  let slots = connected_slots topo in
  let rec find i = function
    | [] -> None
    | s :: rest -> if s = slot then Some (8 + i) else find (i + 1) rest
  in
  find 0 slots
