(** The WL graph kernel (Eq. 2) and gram-matrix helpers.

    [k_wl(G, G') = <phi(G), phi(G')>]; the normalized variant divides by
    [sqrt(k(G,G) k(G',G'))] so that [k(G,G) = 1], which keeps GP signal
    variance interpretable across h values. *)

val kernel : Wl.features -> Wl.features -> float
val normalized : Wl.features -> Wl.features -> float

val gram : ?normalize:bool -> Wl.features array -> Into_linalg.Mat.t
(** Symmetric gram matrix of a feature set (default [normalize = true]). *)

val cross : ?normalize:bool -> Wl.features array -> Wl.features -> float array
(** Kernel values of one query graph against a feature set. *)
