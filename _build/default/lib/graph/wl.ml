type pattern =
  | Base of string
  | Composed of { root : int; neighbors : int list; iteration : int }

type dict = {
  intern : (string, int) Hashtbl.t;
  mutable patterns : pattern array;
  mutable used : int;
}

let create_dict () = { intern = Hashtbl.create 64; patterns = Array.make 64 (Base ""); used = 0 }

let dict_size d = d.used

let register d key pattern =
  match Hashtbl.find_opt d.intern key with
  | Some id -> id
  | None ->
    let id = d.used in
    if id = Array.length d.patterns then begin
      let bigger = Array.make (2 * id) (Base "") in
      Array.blit d.patterns 0 bigger 0 id;
      d.patterns <- bigger
    end;
    d.patterns.(id) <- pattern;
    d.used <- d.used + 1;
    Hashtbl.replace d.intern key id;
    id

let base_id d lbl = register d ("b:" ^ lbl) (Base lbl)

let composed_id d ~iteration ~root ~neighbors =
  let key =
    Printf.sprintf "c%d:%d|%s" iteration root
      (String.concat "," (List.map string_of_int neighbors))
  in
  register d key (Composed { root; neighbors; iteration })

let pattern d id =
  if id < 0 || id >= d.used then invalid_arg "Wl: unknown feature id";
  d.patterns.(id)

let rec describe d id =
  match pattern d id with
  | Base lbl -> lbl
  | Composed { root; neighbors; _ } ->
    let root_desc =
      match pattern d root with
      | Base lbl -> lbl
      | Composed _ -> describe d root
    in
    Printf.sprintf "%s(%s)" root_desc (String.concat ", " (List.map (describe d) neighbors))

let feature_iteration d id =
  match pattern d id with Base _ -> 0 | Composed { iteration; _ } -> iteration

type features = (int * int) array (* sorted by feature id, counts > 0 *)

let node_feature_ids d ~h g =
  if h < 0 then invalid_arg "Wl.node_feature_ids: negative h";
  let n = Labeled_graph.n_nodes g in
  let rows = Array.make (h + 1) [||] in
  rows.(0) <- Array.init n (fun v -> base_id d (Labeled_graph.label g v));
  for k = 1 to h do
    let prev = rows.(k - 1) in
    rows.(k) <-
      Array.init n (fun v ->
          let neigh = List.sort compare (List.map (fun u -> prev.(u)) (Labeled_graph.neighbors g v)) in
          composed_id d ~iteration:k ~root:prev.(v) ~neighbors:neigh)
  done;
  rows

let extract d ~h g =
  let rows = node_feature_ids d ~h g in
  let counts = Hashtbl.create 32 in
  Array.iter
    (fun row ->
      Array.iter
        (fun id ->
          Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
        row)
    rows;
  let pairs = Hashtbl.fold (fun id c acc -> (id, c) :: acc) counts [] in
  Array.of_list (List.sort compare pairs)

let count f id =
  let rec search lo hi =
    if lo >= hi then 0
    else
      let mid = (lo + hi) / 2 in
      let fid, c = f.(mid) in
      if fid = id then c else if fid < id then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length f)

let to_list f = Array.to_list f

let dot a b =
  (* Merge join over the two sorted sparse vectors. *)
  let rec go i j acc =
    if i >= Array.length a || j >= Array.length b then acc
    else
      let ia, ca = a.(i) and ib, cb = b.(j) in
      if ia = ib then go (i + 1) (j + 1) (acc +. float_of_int (ca * cb))
      else if ia < ib then go (i + 1) j acc
      else go i (j + 1) acc
  in
  go 0 0 0.0

let norm f = sqrt (dot f f)
