(** The circuit-graph representation of Section III-A.

    Both circuit nodes and subcircuits become graph nodes; electrical
    connections become edges.  "No connection" subcircuits are elided.  The
    resulting graphs have at most 13 nodes (5 circuit nodes + 3 fixed stages
    + 5 variable subcircuits) and 16 edges, matching the paper's complexity
    accounting for the WL kernel. *)

type node_origin =
  | Circuit_node of string  (** vin, v1, v2, gnd, vout *)
  | Fixed_stage of int  (** 1, 2, 3 *)
  | Variable_slot of Into_circuit.Topology.slot

val build : Into_circuit.Topology.t -> Labeled_graph.t
(** Graph of a topology.  Node labels are circuit-node names, stage labels
    ("-gm1", "+gm2", "-gm3") and variable-subcircuit type labels. *)

val origins : Into_circuit.Topology.t -> node_origin array
(** Parallel to the node numbering of [build]: what each graph node stands
    for.  Used by the interpretability layer to map WL features back to
    subcircuit slots. *)

val slot_node : Into_circuit.Topology.t -> Into_circuit.Topology.slot -> int option
(** Graph-node index of a variable slot ([None] when the slot is
    unconnected). *)
