(** LU factorization with partial pivoting for general real square systems. *)

exception Singular

type t

val decompose : Mat.t -> t
(** @raise Singular when a pivot column is numerically zero. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] using a previously computed factorization. *)

val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [decompose] + [solve]. *)

val det : t -> float
(** Determinant of the factored matrix. *)
