exception No_convergence

let cx re im = { Complex.re; im }
let norm2 z = (z.Complex.re *. z.Complex.re) +. (z.Complex.im *. z.Complex.im)

(* Householder reduction of a complex matrix to upper Hessenberg form.
   Column by column: zero the entries below the first sub-diagonal with a
   unitary reflection applied from both sides. *)
let hessenberg a =
  let n = Cmat.rows a in
  let h = Cmat.copy a in
  for k = 0 to n - 3 do
    (* Build the reflector for column k, rows k+1 .. n-1. *)
    let col = Array.init (n - k - 1) (fun i -> Cmat.get h (k + 1 + i) k) in
    let norm = sqrt (Array.fold_left (fun acc z -> acc +. norm2 z) 0.0 col) in
    if norm > 1e-300 then begin
      let x0 = col.(0) in
      let phase =
        if Complex.norm x0 < 1e-300 then Complex.one
        else Complex.div x0 (cx (Complex.norm x0) 0.0)
      in
      let alpha = Complex.mul (cx (-.norm) 0.0) phase in
      let v = Array.copy col in
      v.(0) <- Complex.sub x0 alpha;
      let vnorm2 = Array.fold_left (fun acc z -> acc +. norm2 z) 0.0 v in
      if vnorm2 > 1e-300 then begin
        (* H = I - 2 v v* / (v* v); apply to rows k+1.. and columns k+1.. *)
        let scale = 2.0 /. vnorm2 in
        (* rows: h <- H h *)
        for j = k to n - 1 do
          let dot = ref Complex.zero in
          for i = 0 to n - k - 2 do
            dot := Complex.add !dot (Complex.mul (Complex.conj v.(i)) (Cmat.get h (k + 1 + i) j))
          done;
          let f = Complex.mul (cx scale 0.0) !dot in
          for i = 0 to n - k - 2 do
            Cmat.set h (k + 1 + i) j
              (Complex.sub (Cmat.get h (k + 1 + i) j) (Complex.mul v.(i) f))
          done
        done;
        (* columns: h <- h H *)
        for i = 0 to n - 1 do
          let dot = ref Complex.zero in
          for j = 0 to n - k - 2 do
            dot := Complex.add !dot (Complex.mul (Cmat.get h i (k + 1 + j)) v.(j))
          done;
          let f = Complex.mul (cx scale 0.0) !dot in
          for j = 0 to n - k - 2 do
            Cmat.set h i (k + 1 + j)
              (Complex.sub (Cmat.get h i (k + 1 + j)) (Complex.mul f (Complex.conj v.(j))))
          done
        done
      end
    end
  done;
  h

(* Wilkinson shift: the eigenvalue of the trailing 2x2 block closest to the
   bottom-right entry. *)
let wilkinson_shift h m =
  let a = Cmat.get h (m - 1) (m - 1)
  and b = Cmat.get h (m - 1) m
  and c = Cmat.get h m (m - 1)
  and d = Cmat.get h m m in
  let tr = Complex.add a d in
  let det = Complex.sub (Complex.mul a d) (Complex.mul b c) in
  let half_tr = Complex.div tr (cx 2.0 0.0) in
  let disc = Complex.sqrt (Complex.sub (Complex.mul half_tr half_tr) det) in
  let l1 = Complex.add half_tr disc and l2 = Complex.sub half_tr disc in
  if norm2 (Complex.sub l1 d) <= norm2 (Complex.sub l2 d) then l1 else l2

(* One explicit single-shift QR step on the active block [0..m] of the
   Hessenberg matrix: factor H - shift*I = Q R with Givens rotations, then
   replace the block with R Q + shift*I.  O(n^2) per step on a Hessenberg
   matrix, which is all the tiny circuit pencils need. *)
let qr_sweep h m shift =
  (* Shift the diagonal. *)
  for i = 0 to m do
    Cmat.set h i i (Complex.sub (Cmat.get h i i) shift)
  done;
  let cs = Array.make (m + 1) Complex.one in
  let sn = Array.make (m + 1) Complex.zero in
  (* Left rotations: eliminate each sub-diagonal, producing R in place. *)
  for k = 0 to m - 1 do
    let x = Cmat.get h k k and y = Cmat.get h (k + 1) k in
    let r = sqrt (norm2 x +. norm2 y) in
    let c, s =
      if r < 1e-300 then (Complex.one, Complex.zero)
      else (Complex.div x (cx r 0.0), Complex.div y (cx r 0.0))
    in
    cs.(k) <- c;
    sn.(k) <- s;
    for j = k to m do
      let hkj = Cmat.get h k j and hk1j = Cmat.get h (k + 1) j in
      Cmat.set h k j
        (Complex.add (Complex.mul (Complex.conj c) hkj) (Complex.mul (Complex.conj s) hk1j));
      Cmat.set h (k + 1) j (Complex.sub (Complex.mul c hk1j) (Complex.mul s hkj))
    done
  done;
  (* Right rotations: H <- R Q restores Hessenberg form. *)
  for k = 0 to m - 1 do
    let c = cs.(k) and s = sn.(k) in
    for i = 0 to min (k + 1) m do
      let hik = Cmat.get h i k and hik1 = Cmat.get h i (k + 1) in
      Cmat.set h i k (Complex.add (Complex.mul hik c) (Complex.mul hik1 s));
      Cmat.set h i (k + 1)
        (Complex.sub
           (Complex.mul hik1 (Complex.conj c))
           (Complex.mul hik (Complex.conj s)))
    done
  done;
  (* Undo the shift. *)
  for i = 0 to m do
    Cmat.set h i i (Complex.add (Cmat.get h i i) shift)
  done

let eigenvalues ?(max_sweeps = 40) a =
  let n = Cmat.rows a in
  if Cmat.cols a <> n then invalid_arg "Eig.eigenvalues: not square";
  if n = 0 then [||]
  else begin
    let h = hessenberg a in
    let eigs = ref [] in
    let m = ref (n - 1) in
    let sweeps = ref 0 in
    while !m > 0 do
      (* Deflation test on the last sub-diagonal of the active block. *)
      let small =
        Complex.norm (Cmat.get h !m (!m - 1))
        <= 1e-13
           *. (Complex.norm (Cmat.get h !m !m) +. Complex.norm (Cmat.get h (!m - 1) (!m - 1))
              +. 1e-300)
      in
      if small then begin
        eigs := Cmat.get h !m !m :: !eigs;
        decr m;
        sweeps := 0
      end
      else begin
        if !sweeps >= max_sweeps then raise No_convergence;
        incr sweeps;
        let shift =
          (* An occasional exceptional shift breaks symmetry stalls. *)
          if !sweeps mod 13 = 0 then cx (Complex.norm (Cmat.get h !m (!m - 1))) 0.0
          else wilkinson_shift h !m
        in
        qr_sweep h !m shift
      end
    done;
    Array.of_list (Cmat.get h 0 0 :: !eigs)
  end

let eigenvalues_real ?max_sweeps a =
  let n = Mat.rows a in
  let c = Cmat.create n (Mat.cols a) in
  for i = 0 to n - 1 do
    for j = 0 to Mat.cols a - 1 do
      Cmat.set c i j (cx (Mat.get a i j) 0.0)
    done
  done;
  eigenvalues ?max_sweeps c
