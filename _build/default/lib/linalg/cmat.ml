exception Singular

type t = { r : int; c : int; data : Complex.t array }

let create r c = { r; c; data = Array.make (r * c) Complex.zero }
let rows m = m.r
let cols m = m.c
let get m i j = m.data.((i * m.c) + j)
let set m i j z = m.data.((i * m.c) + j) <- z
let add_entry m i j z = m.data.((i * m.c) + j) <- Complex.add m.data.((i * m.c) + j) z
let copy m = { m with data = Array.copy m.data }

let mul_vec m x =
  if m.c <> Array.length x then invalid_arg "Cmat.mul_vec";
  Array.init m.r (fun i ->
      let acc = ref Complex.zero in
      for j = 0 to m.c - 1 do
        acc := Complex.add !acc (Complex.mul (get m i j) x.(j))
      done;
      !acc)

let solve a b =
  let n = a.r in
  if a.c <> n then invalid_arg "Cmat.solve: not square";
  if Array.length b <> n then invalid_arg "Cmat.solve: rhs dimension";
  let m = copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm (get m i k) > Complex.norm (get m !pivot k) then pivot := i
    done;
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    let pkk = get m k k in
    if Complex.norm pkk < 1e-300 then raise Singular;
    for i = k + 1 to n - 1 do
      let f = Complex.div (get m i k) pkk in
      if f <> Complex.zero then begin
        for j = k + 1 to n - 1 do
          set m i j (Complex.sub (get m i j) (Complex.mul f (get m k j)))
        done;
        x.(i) <- Complex.sub x.(i) (Complex.mul f x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for k = i + 1 to n - 1 do
      s := Complex.sub !s (Complex.mul (get m i k) x.(k))
    done;
    x.(i) <- Complex.div !s (get m i i)
  done;
  x
