(** Cholesky factorization of symmetric positive-definite matrices.

    The workhorse of GP regression: the gram matrix [K + sigma^2 I] is
    factored once per fit; posterior means, variances and the log marginal
    likelihood are then linear solves against the factor. *)

exception Not_positive_definite

type t
(** Lower-triangular factor [L] with [L L^T = A]. *)

val decompose : Mat.t -> t
(** Factor a symmetric positive-definite matrix.
    @raise Not_positive_definite when a pivot is not strictly positive. *)

val decompose_with_jitter : Mat.t -> t * float
(** Like {!decompose} but retries with geometrically increasing diagonal
    jitter (starting at 1e-10 of the mean diagonal) when the matrix is only
    semi-definite; returns the jitter that succeeded (0 when none needed).
    @raise Not_positive_definite after 12 failed attempts. *)

val solve : t -> Vec.t -> Vec.t
(** [solve ch b] solves [A x = b]. *)

val solve_lower : t -> Vec.t -> Vec.t
(** [solve_lower ch b] solves [L y = b] (forward substitution only). *)

val log_det : t -> float
(** Log determinant of [A] (twice the log-sum of the factor diagonal). *)

val lower : t -> Mat.t
(** The explicit lower-triangular factor. *)

val dim : t -> int
