(** Dense real vectors (thin wrappers over [float array]). *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val map2 : (float -> float -> float) -> t -> t -> t
val max_abs_diff : t -> t -> float
(** Infinity norm of the difference. *)
