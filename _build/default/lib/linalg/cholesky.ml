exception Not_positive_definite

type t = { l : Mat.t }

let decompose a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Cholesky.decompose: not square";
  let l = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !s <= 0.0 then raise Not_positive_definite;
        Mat.set l i j (sqrt !s)
      end
      else Mat.set l i j (!s /. Mat.get l j j)
    done
  done;
  { l }

let decompose_with_jitter a =
  let n = Mat.rows a in
  let mean_diag =
    if n = 0 then 1.0
    else begin
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        s := !s +. Float.abs (Mat.get a i i)
      done;
      max (!s /. float_of_int n) 1e-30
    end
  in
  let rec attempt k jitter =
    if k > 12 then raise Not_positive_definite
    else
      let m = if jitter = 0.0 then a else Mat.add_diagonal a jitter in
      match decompose m with
      | ch -> (ch, jitter)
      | exception Not_positive_definite ->
        let next = if jitter = 0.0 then 1e-10 *. mean_diag else jitter *. 10.0 in
        attempt (k + 1) next
  in
  attempt 0 0.0

let dim t = Mat.rows t.l

let solve_lower t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Cholesky.solve_lower";
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.get t.l i k *. y.(k))
    done;
    y.(i) <- !s /. Mat.get t.l i i
  done;
  y

let solve t b =
  let n = dim t in
  let y = solve_lower t b in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Mat.get t.l k i *. x.(k))
    done;
    x.(i) <- !s /. Mat.get t.l i i
  done;
  x

let log_det t =
  let n = dim t in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get t.l i i)
  done;
  2.0 *. !acc

let lower t = Mat.copy t.l
