(** Eigenvalues of small dense complex matrices.

    Householder reduction to upper Hessenberg form followed by the shifted
    (Wilkinson) QR iteration with deflation.  Only eigenvalues are
    computed; the intended use is pole/zero extraction from circuit pencils
    of dimension <= ~20, where dense O(n^3) iterations are ideal. *)

exception No_convergence

val eigenvalues : ?max_sweeps:int -> Cmat.t -> Complex.t array
(** Eigenvalues of a square complex matrix, in deflation order.
    @raise Invalid_argument on a non-square input.
    @raise No_convergence when a sub-diagonal fails to deflate within
    [max_sweeps] (default 40) iterations per eigenvalue. *)

val eigenvalues_real : ?max_sweeps:int -> Mat.t -> Complex.t array
(** Convenience wrapper embedding a real matrix into the complex solver. *)
