lib/linalg/eig.mli: Cmat Complex Mat
