lib/linalg/cmat.mli: Complex
