lib/linalg/cmat.ml: Array Complex
