lib/linalg/eig.ml: Array Cmat Complex Mat
