lib/linalg/mat.mli: Vec
