lib/linalg/vec.mli:
