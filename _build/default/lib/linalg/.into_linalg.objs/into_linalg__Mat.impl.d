lib/linalg/mat.ml: Array Float
