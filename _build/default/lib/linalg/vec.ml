type t = float array

let make n x = Array.make n x
let init = Array.init
let dim = Array.length
let copy = Array.copy

let check_dims a b =
  if Array.length a <> Array.length b then invalid_arg "Vec: dimension mismatch"

let dot a b =
  check_dims a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let map2 f a b =
  check_dims a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_dims x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let max_abs_diff a b =
  check_dims a b;
  let m = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    m := max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m
