(** Dense complex matrices and a complex LU solver.

    The AC small-signal analysis assembles a complex admittance matrix
    [Y(jw)] per frequency point and solves [Y v = i]; systems are tiny
    (3-6 unknowns) so a dense LU with partial pivoting is ideal. *)

exception Singular

type t

val create : int -> int -> t
(** Zero matrix. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val add_entry : t -> int -> int -> Complex.t -> unit
(** [add_entry m i j z] accumulates: [m.(i).(j) <- m.(i).(j) + z].
    This is the MNA "stamp" primitive. *)

val copy : t -> t
val mul_vec : t -> Complex.t array -> Complex.t array

val solve : t -> Complex.t array -> Complex.t array
(** Solve [A x = b] by LU with partial pivoting (by modulus).  The input
    matrix is not modified.
    @raise Singular when the matrix is numerically singular. *)
