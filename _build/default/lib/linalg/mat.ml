type t = { r : int; c : int; data : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Mat.create";
  { r; c; data = Array.make (r * c) 0.0 }

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.data.((i * c) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)
let rows m = m.r
let cols m = m.c
let get m i j = m.data.((i * m.c) + j)
let set m i j x = m.data.((i * m.c) + j) <- x
let copy m = { m with data = Array.copy m.data }
let transpose m = init m.c m.r (fun i j -> get m j i)

let mul a b =
  if a.c <> b.r then invalid_arg "Mat.mul: dimension mismatch";
  let m = create a.r b.c in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.c - 1 do
          m.data.((i * m.c) + j) <- m.data.((i * m.c) + j) +. (aik *. get b k j)
        done
    done
  done;
  m

let mul_vec a x =
  if a.c <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.c - 1 do
        acc := !acc +. (get a i j *. x.(j))
      done;
      !acc)

let add a b =
  if a.r <> b.r || a.c <> b.c then invalid_arg "Mat.add: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) +. b.data.(i)) }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let of_rows rows_arr =
  let r = Array.length rows_arr in
  let c = if r = 0 then 0 else Array.length rows_arr.(0) in
  Array.iter (fun row -> if Array.length row <> c then invalid_arg "Mat.of_rows") rows_arr;
  init r c (fun i j -> rows_arr.(i).(j))

let to_rows m = Array.init m.r (fun i -> Array.init m.c (fun j -> get m i j))

let add_diagonal a x =
  let m = copy a in
  for i = 0 to min a.r a.c - 1 do
    set m i i (get m i i +. x)
  done;
  m

let max_abs_diff a b =
  if a.r <> b.r || a.c <> b.c then invalid_arg "Mat.max_abs_diff";
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := max !d (Float.abs (x -. b.data.(i)))) a.data;
  !d

let is_symmetric ?(tol = 1e-9) m =
  m.r = m.c
  &&
  let ok = ref true in
  for i = 0 to m.r - 1 do
    for j = i + 1 to m.c - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok
