exception Singular

type t = { lu : Mat.t; perm : int array; sign : float }

let decompose a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.decompose: not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k below the diagonal. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot k) then pivot := i
    done;
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !pivot j);
        Mat.set lu !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let pkk = Mat.get lu k k in
    if Float.abs pkk < 1e-300 then raise Singular;
    for i = k + 1 to n - 1 do
      let f = Mat.get lu i k /. pkk in
      Mat.set lu i k f;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (f *. Mat.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve t b =
  let n = Mat.rows t.lu in
  if Array.length b <> n then invalid_arg "Lu.solve";
  let x = Array.init n (fun i -> b.(t.perm.(i))) in
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.get t.lu i k *. x.(k))
    done;
    x.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Mat.get t.lu i k *. x.(k))
    done;
    x.(i) <- !s /. Mat.get t.lu i i
  done;
  x

let solve_system a b = solve (decompose a) b

let det t =
  let n = Mat.rows t.lu in
  let d = ref t.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get t.lu i i
  done;
  !d
