(** Dense real matrices in row-major order. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
val add : t -> t -> t
val scale : float -> t -> t
val of_rows : float array array -> t
val to_rows : t -> float array array
val add_diagonal : t -> float -> t
(** [add_diagonal a x] returns a copy with [x] added to every diagonal entry. *)

val max_abs_diff : t -> t -> float
val is_symmetric : ?tol:float -> t -> bool
