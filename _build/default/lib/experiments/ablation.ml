module Topo_bo = Into_core.Topo_bo
module Candidates = Into_core.Candidates
module Evaluator = Into_core.Evaluator
module Spec = Into_circuit.Spec

type row = {
  name : string;
  successes : int;
  runs : int;
  mean_fom : float option;
  mean_sims_to_best : float option;
}

let base_config scale =
  {
    (Topo_bo.default_config Candidates.Mixed) with
    Topo_bo.n_init = scale.Methods.n_init;
    iterations = scale.Methods.iterations;
    pool = scale.Methods.pool;
    sizing =
      {
        Into_core.Sizing.default_config with
        Into_core.Sizing.n_init = scale.Methods.sizing_init;
        n_iter = scale.Methods.sizing_iters;
      };
  }

let variants scale =
  let base = base_config scale in
  [
    ("INTO-OA (baseline)", base);
    ("h = 0 (labels only)", { base with Topo_bo.h_candidates = [ 0 ] });
    ("h = 3 (fixed deep)", { base with Topo_bo.h_candidates = [ 3 ] });
    ("wEI w = 0.1 (feasibility-led)", { base with Topo_bo.wei_w = 0.1 });
    ("wEI w = 0.9 (objective-led)", { base with Topo_bo.wei_w = 0.9 });
    ("pool = 20", { base with Topo_bo.pool = 20 });
  ]

let sims_to_best steps =
  (* Budget at which the eventually-best FoM first appeared. *)
  let final =
    List.fold_left
      (fun acc (s : Topo_bo.step) ->
        match s.Topo_bo.best_fom_so_far with Some f -> Some f | None -> acc)
      None steps
  in
  Option.bind final (fun f -> Curves.sims_to_reach steps ~target:f)

let run ?(progress = fun _ -> ()) ~spec ~scale ~seed () =
  List.map
    (fun (name, config) ->
      let outcomes =
        List.init scale.Methods.runs (fun run_index ->
            progress (Printf.sprintf "ablation %s / run %d" name (run_index + 1));
            let rng =
              Into_util.Rng.create ~seed:(Hashtbl.hash (seed, name, run_index))
            in
            Topo_bo.run ~config ~rng ~spec ())
      in
      let best_foms =
        List.filter_map
          (fun (r : Topo_bo.result) ->
            Option.map (fun (e : Evaluator.evaluation) -> e.Evaluator.fom) r.Topo_bo.best)
          outcomes
      in
      let sims =
        List.filter_map (fun (r : Topo_bo.result) -> sims_to_best r.Topo_bo.steps) outcomes
      in
      {
        name;
        successes = List.length best_foms;
        runs = scale.Methods.runs;
        mean_fom =
          (match best_foms with [] -> None | l -> Some (Into_util.Stats.mean l));
        mean_sims_to_best =
          (match sims with
          | [] -> None
          | l -> Some (Into_util.Stats.mean (List.map float_of_int l)));
      })
    (variants scale)

let report spec rows =
  let body =
    List.map
      (fun r ->
        [
          r.name;
          Printf.sprintf "%d/%d" r.successes r.runs;
          (match r.mean_fom with Some f -> Printf.sprintf "%.1f" f | None -> "-");
          (match r.mean_sims_to_best with Some s -> Printf.sprintf "%.0f" s | None -> "-");
        ])
      rows
  in
  Printf.sprintf "Ablation study on %s\n%s" spec.Spec.name
    (Into_util.Table.render
       ~header:[ "Variant"; "Suc. Rate"; "Final FoM"; "# Sim. to best" ]
       body)
