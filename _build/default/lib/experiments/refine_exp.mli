(** The Section IV-C experiment (Fig. 7, Table IV): refine the two trusted
    designs C1 and C2 so they satisfy S-5.

    The seeds are first sized for the regime they were published for — the
    same bounds at a 1 nF load with the bandwidth headroom (GBW > 2.5 MHz)
    a high-performance publication would report — and then asked to drive
    S-5's 10 nF.  The tenfold load pushes them just outside the
    specification: the situation in which a designer reaches for minimal,
    interpretable modifications rather than a from-scratch synthesis.  The WL-GP surrogates guiding the
    refinement come from an INTO-OA optimization on S-5, i.e. they are the
    models "trained during optimization" the paper reuses. *)

type case = {
  label : string;  (** "C1" or "C2" *)
  seed_topology : Into_circuit.Topology.t;
  seed_sizing : float array;
  before : Into_circuit.Perf.t;  (** under S-5 *)
  outcome : Into_core.Refine.outcome;
}

type report = { cases : case list; models_sims : int (* budget spent training models *) }

val run :
  ?models:(string * Into_gp.Wl_gp.t) list ->
  scale:Methods.scale ->
  rng:Into_util.Rng.t ->
  unit ->
  report
(** When [models] is omitted, a fresh INTO-OA run on S-5 trains them (its
    simulations are reported in [models_sims], matching the paper's account
    that refinement itself costs only ~40 simulations). *)
