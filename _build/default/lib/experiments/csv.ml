module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Evaluator = Into_core.Evaluator

let escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let of_rows ~header rows =
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map escape row)) (header :: rows))
  ^ "\n"

let campaign_runs campaign =
  let row (r : Campaign.run) =
    let base =
      [
        r.Campaign.spec.Spec.name;
        Methods.name r.Campaign.method_id;
        string_of_int r.Campaign.run_index;
        string_of_int r.Campaign.trace.Methods.total_sims;
      ]
    in
    match r.Campaign.trace.Methods.best with
    | None -> base @ [ "0"; ""; ""; ""; ""; ""; "" ]
    | Some (e : Evaluator.evaluation) ->
      base
      @ [
          "1";
          Printf.sprintf "%.6g" e.Evaluator.fom;
          Printf.sprintf "%.6g" e.Evaluator.perf.Perf.gain_db;
          Printf.sprintf "%.6g" e.Evaluator.perf.Perf.gbw_hz;
          Printf.sprintf "%.6g" e.Evaluator.perf.Perf.pm_deg;
          Printf.sprintf "%.6g" e.Evaluator.perf.Perf.power_w;
          Into_circuit.Topology.to_string e.Evaluator.topology;
        ]
  in
  of_rows
    ~header:
      [
        "spec"; "method"; "run"; "total_sims"; "success"; "fom"; "gain_db"; "gbw_hz";
        "pm_deg"; "power_w"; "topology";
      ]
    (List.map row campaign)

let campaign_table2 campaign =
  let rows =
    List.concat_map
      (fun spec ->
        List.map
          (fun (r : Campaign.row) ->
            let succ, total = r.Campaign.success_rate in
            [
              spec.Spec.name;
              r.Campaign.method_name;
              string_of_int succ;
              string_of_int total;
              (match r.Campaign.final_fom with
              | Some f -> Printf.sprintf "%.6g" f
              | None -> "");
              (match r.Campaign.sims_to_ref with
              | Some s -> Printf.sprintf "%.1f" s
              | None -> "");
              (match r.Campaign.speedup with
              | Some s -> Printf.sprintf "%.3g" s
              | None -> "");
            ])
          (Campaign.table2 campaign spec))
      Spec.all
  in
  of_rows
    ~header:[ "spec"; "method"; "successes"; "runs"; "final_fom"; "sims_to_ref"; "speedup" ]
    rows

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
