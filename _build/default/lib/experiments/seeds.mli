(** Behavior-level encodings of the two published three-stage op-amps used
    as refinement seeds in Section IV-C (Fig. 7).

    C1 re-encodes the no-Miller feedforward scheme of Thandri &
    Silva-Martinez [19]: feedforward transconductors from the input to both
    later nodes and a parallel -gm/C block between v1 and vout.
    C2 re-encodes the impedance-adapting compensation of Peng et al. [20]:
    a feedforward -gm into v2, a Miller capacitor between v1 and vout and
    an R-C series impedance-adapting network at v2. *)

val c1 : Into_circuit.Topology.t
val c2 : Into_circuit.Topology.t

val c1_expected_move : Into_circuit.Topology.slot * Into_circuit.Subcircuit.t
(** The paper's refinement: the v1-vout parallel -gm/C replaced by -gm. *)

val c2_expected_move : Into_circuit.Topology.slot * Into_circuit.Subcircuit.t
(** The paper's refinement: the vin-v2 -gm replaced by a series +gm/C. *)
