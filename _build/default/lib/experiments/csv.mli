(** CSV export of experiment artifacts, so campaign results can be
    post-processed outside OCaml (plots, spreadsheets, regression
    tracking). *)

val escape : string -> string
(** RFC-4180 quoting of a single field. *)

val of_rows : header:string list -> string list list -> string
(** CSV text with CRLF-free line endings (plain [\n]). *)

val campaign_runs : Campaign.t -> string
(** One row per (spec, method, run): success, FoM and metric breakdown of
    the run's best design, total simulations. *)

val campaign_table2 : Campaign.t -> string
(** The Table II aggregation in CSV form. *)

val write_file : path:string -> string -> unit
(** @raise Sys_error on filesystem failures. *)
