(** The Section IV-D experiment (Table V): map the best behavioral op-amps
    and the refined designs to the transistor level and re-measure. *)

type row = {
  spec_name : string;
  label : string;  (** method name or refined-circuit name *)
  behavioral : Into_circuit.Perf.t;
  transistor : Into_circuit.Perf.t option;  (** [None]: failed to simulate *)
  behavioral_fom : float;
  transistor_fom : float option;
  meets_spec : bool option;  (** transistor-level spec check *)
  impls : Into_transistor.Mapping.stage_impl list;
}

val evaluate_design :
  spec:Into_circuit.Spec.t ->
  label:string ->
  topology:Into_circuit.Topology.t ->
  sizing:float array ->
  behavioral:Into_circuit.Perf.t ->
  row

val from_campaign :
  Campaign.t -> methods:Methods.id list -> row list
(** One row per (spec, method) best design found by the campaign. *)

val from_refinements : Refine_exp.report -> row list
(** Rows for the refined designs R1/R2 under S-5. *)
