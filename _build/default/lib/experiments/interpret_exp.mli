(** The Section IV-B experiment: do the WL-GP gradients agree with
    remove-and-resimulate sensitivity analysis on the best design?

    For every connected variable slot of the studied design, the report
    pairs the surrogate gradient of each metric model with the measured
    metric change when the subcircuit is deleted.  Agreement means the
    gradient sign matches the sign of the performance *loss* caused by
    removal (a structure with positive gradient should cost performance
    when removed). *)

type slot_row = {
  slot : Into_circuit.Topology.slot;
  subcircuit : Into_circuit.Subcircuit.t;
  gbw_gradient : float;
  pm_gradient : float;
  d_gbw_hz : float option;  (** measured GBW change on removal *)
  d_pm_deg : float option;  (** measured PM change on removal *)
}

type report = {
  design : Into_core.Evaluator.evaluation;
  rows : slot_row list;
  agreements : int;  (** gradient/sensitivity sign agreements *)
  comparisons : int;  (** sign pairs compared *)
}

val analyze :
  models:(string * Into_gp.Wl_gp.t) list ->
  spec:Into_circuit.Spec.t ->
  design:Into_core.Evaluator.evaluation ->
  report
(** @raise Invalid_argument when the gbw/pm surrogates are missing or the
    design does not simulate. *)
