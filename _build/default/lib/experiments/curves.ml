module Topo_bo = Into_core.Topo_bo

let best_fom_at steps ~sims =
  List.fold_left
    (fun acc (s : Topo_bo.step) ->
      if s.cumulative_sims <= sims then
        match s.best_fom_so_far with Some _ as b -> b | None -> acc
      else acc)
    None steps

let sims_to_reach steps ~target =
  List.fold_left
    (fun acc (s : Topo_bo.step) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match s.best_fom_so_far with
        | Some f when f >= target -> Some s.cumulative_sims
        | Some _ | None -> None))
    None steps

let sample_grid ~step ~max_sims =
  if step <= 0 then invalid_arg "Curves.sample_grid: non-positive step";
  let rec go acc s = if s > max_sims then List.rev acc else go (s :: acc) (s + step) in
  go [] step

let mean_curve runs ~grid =
  List.map
    (fun sims ->
      let foms = List.filter_map (fun steps -> best_fom_at steps ~sims) runs in
      let n = List.length foms in
      (sims, (if n = 0 then 0.0 else Into_util.Stats.mean foms), n))
    grid
