module Topology = Into_circuit.Topology
module Spec = Into_circuit.Spec
module Evaluator = Into_core.Evaluator
module Objective = Into_core.Objective
module Wl_gp = Into_gp.Wl_gp
module Gp = Into_gp.Gp
module Rbf = Into_gp.Rbf

type model_score = {
  metric : string;
  wl_spearman : float;
  embedding_spearman : float;
}

type report = {
  n_train : int;
  n_test : int;
  scores : model_score list;
  sims_spent : int;
}

let metric_names = List.map (fun m -> m.Objective.name) Objective.metrics @ [ "fom" ]

let target spec (e : Evaluator.evaluation) m =
  let n_metrics = List.length Objective.metrics in
  if m < n_metrics then (Objective.metric_values e.Evaluator.perf).(m)
  else Objective.penalized_fom_value e.Evaluator.perf spec ~cl_f:spec.Spec.cl_f

(* Distinct random topologies, each sized with the standard inner BO. *)
let sample ~progress ~rng ~spec ~sizing_config n sims =
  let seen = Hashtbl.create (4 * n) in
  let rec draw acc k =
    if k = 0 then List.rev acc
    else begin
      let t = Topology.random rng in
      if Hashtbl.mem seen (Topology.to_index t) then draw acc k
      else begin
        Hashtbl.replace seen (Topology.to_index t) ();
        progress (Printf.sprintf "sizing sample %d" (n - k + 1));
        match Evaluator.evaluate ~sizing_config ~rng ~spec t with
        | Some e ->
          sims := !sims + e.Evaluator.n_sims;
          draw (e :: acc) (k - 1)
        | None ->
          sims := !sims + Evaluator.sims_of_failed_evaluation ~sizing_config;
          draw acc k
      end
    end
  in
  draw [] n

let embedding_predictions train test m spec =
  let xs = Array.of_list (List.map (fun e -> Into_baselines.Embedding.embed e.Evaluator.topology) train) in
  let y = Array.of_list (List.map (fun e -> target spec e m) train) in
  let fit l noise =
    match Gp.fit ~gram:(Rbf.gram ~lengthscale:l xs) ~y ~signal:1.0 ~noise with
    | gp -> Some (gp, Gp.log_marginal_likelihood gp, l)
    | exception Into_linalg.Cholesky.Not_positive_definite -> None
  in
  let best =
    List.fold_left
      (fun acc (l, noise) ->
        match (acc, fit l noise) with
        | None, c -> c
        | Some (_, bl, _), (Some (_, lml, _) as c) when lml > bl -> c
        | acc, _ -> acc)
      None
      [ (0.5, 1e-2); (1.0, 1e-2); (2.0, 1e-2); (4.0, 1e-2); (1.0, 1e-1); (2.0, 1e-1) ]
  in
  match best with
  | None -> List.map (fun _ -> 0.0) test
  | Some (gp, _, l) ->
    List.map
      (fun e ->
        let q = Into_baselines.Embedding.embed e.Evaluator.topology in
        fst (Gp.predict gp ~k_star:(Rbf.cross ~lengthscale:l xs q) ~k_self:1.0))
      test

let wl_predictions train test m spec =
  let dict = Into_graph.Wl.create_dict () in
  let graphs =
    Array.of_list (List.map (fun e -> Into_graph.Circuit_graph.build e.Evaluator.topology) train)
  in
  let y = Array.of_list (List.map (fun e -> target spec e m) train) in
  let model = Wl_gp.fit ~dict ~graphs ~y () in
  List.map
    (fun e -> fst (Wl_gp.predict model (Into_graph.Circuit_graph.build e.Evaluator.topology)))
    test

let run ?(n_train = 40) ?(n_test = 20) ?(progress = fun _ -> ()) ~spec ~sizing_config
    ~seed () =
  let rng = Into_util.Rng.create ~seed in
  let sims = ref 0 in
  let pool = sample ~progress ~rng ~spec ~sizing_config (n_train + n_test) sims in
  let rec split k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (k - 1) (x :: acc) rest
  in
  let train, test = split n_train [] pool in
  let scores =
    List.mapi
      (fun m name ->
        let truth = Array.of_list (List.map (fun e -> target spec e m) test) in
        let wl = Array.of_list (wl_predictions train test m spec) in
        let emb = Array.of_list (embedding_predictions train test m spec) in
        {
          metric = name;
          wl_spearman = Into_util.Stats.spearman wl truth;
          embedding_spearman = Into_util.Stats.spearman emb truth;
        })
      metric_names
  in
  { n_train = List.length train; n_test = List.length test; scores; sims_spent = !sims }

let render spec r =
  let rows =
    List.map
      (fun s ->
        [
          s.metric;
          Printf.sprintf "%.3f" s.wl_spearman;
          Printf.sprintf "%.3f" s.embedding_spearman;
        ])
      r.scores
  in
  Printf.sprintf
    "Surrogate quality on %s: held-out Spearman rank correlation\n\
     (train %d, test %d sized topologies; %d simulations)\n%s"
    spec.Spec.name r.n_train r.n_test r.sims_spent
    (Into_util.Table.render
       ~header:[ "Metric"; "WL-GP"; "embedding GP (VGAE sub.)" ]
       rows)
