(** Ablation study over INTO-OA's design choices (DESIGN.md, E8b).

    Beyond the paper's candidate-generation ablations (INTO-OA-r / -m,
    covered by the main campaign), this isolates:
    - the WL iteration depth: [h = 0] restricts the kernel to bag-of-labels
      features (no wiring information), against the MLE-selected depth;
    - the wEI exploration weight [w];
    - the candidate pool size.                                              *)

type row = {
  name : string;
  successes : int;
  runs : int;
  mean_fom : float option;  (** over successful runs *)
  mean_sims_to_best : float option;
      (** budget spent when the final best design was first found *)
}

val variants : Methods.scale -> (string * Into_core.Topo_bo.config) list

val run :
  ?progress:(string -> unit) ->
  spec:Into_circuit.Spec.t ->
  scale:Methods.scale ->
  seed:int ->
  unit ->
  row list

val report : Into_circuit.Spec.t -> row list -> string
