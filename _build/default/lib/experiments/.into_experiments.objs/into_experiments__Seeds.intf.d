lib/experiments/seeds.mli: Into_circuit
