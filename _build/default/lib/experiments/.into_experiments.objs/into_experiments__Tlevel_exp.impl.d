lib/experiments/tlevel_exp.ml: Campaign Into_circuit Into_core Into_transistor List Methods Refine_exp String
