lib/experiments/methods.mli: Into_circuit Into_core Into_util
