lib/experiments/refine_exp.ml: Into_circuit Into_core Methods Seeds
