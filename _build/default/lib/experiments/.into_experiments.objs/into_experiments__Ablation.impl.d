lib/experiments/ablation.ml: Curves Hashtbl Into_circuit Into_core Into_util List Methods Option Printf
