lib/experiments/surrogate_exp.mli: Into_circuit Into_core
