lib/experiments/interpret_exp.ml: Into_circuit Into_core List Option
