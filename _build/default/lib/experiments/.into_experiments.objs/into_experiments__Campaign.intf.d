lib/experiments/campaign.mli: Into_circuit Into_core Methods
