lib/experiments/csv.ml: Campaign Fun Into_circuit Into_core List Methods Printf String
