lib/experiments/methods.ml: Into_baselines Into_core Sys
