lib/experiments/surrogate_exp.ml: Array Hashtbl Into_baselines Into_circuit Into_core Into_gp Into_graph Into_linalg Into_util List Printf
