lib/experiments/interpret_exp.mli: Into_circuit Into_core Into_gp
