lib/experiments/tlevel_exp.mli: Campaign Into_circuit Into_transistor Methods Refine_exp
