lib/experiments/curves.mli: Into_core
