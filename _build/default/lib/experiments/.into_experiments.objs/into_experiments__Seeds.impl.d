lib/experiments/seeds.ml: Into_circuit
