lib/experiments/campaign.ml: Curves Float Hashtbl Int64 Into_circuit Into_core Into_util List Methods Option Printf String
