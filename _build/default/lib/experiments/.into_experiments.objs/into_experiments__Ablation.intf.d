lib/experiments/ablation.mli: Into_circuit Into_core Methods
