lib/experiments/refine_exp.mli: Into_circuit Into_core Into_gp Into_util Methods
