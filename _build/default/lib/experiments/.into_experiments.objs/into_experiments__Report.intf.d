lib/experiments/report.mli: Campaign Interpret_exp Into_circuit Methods Refine_exp Tlevel_exp
