lib/experiments/report.ml: Campaign Interpret_exp Into_circuit Into_core Into_util List Methods Option Printf Refine_exp String Tlevel_exp
