lib/experiments/csv.mli: Campaign
