lib/experiments/curves.ml: Into_core Into_util List
