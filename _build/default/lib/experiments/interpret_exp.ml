module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Evaluator = Into_core.Evaluator
module Attribution = Into_core.Attribution
module Sensitivity = Into_core.Sensitivity

type slot_row = {
  slot : Topology.slot;
  subcircuit : Subcircuit.t;
  gbw_gradient : float;
  pm_gradient : float;
  d_gbw_hz : float option;
  d_pm_deg : float option;
}

type report = {
  design : Evaluator.evaluation;
  rows : slot_row list;
  agreements : int;
  comparisons : int;
}

let model_of models name =
  match List.assoc_opt name models with
  | Some m -> m
  | None -> invalid_arg ("Interpret_exp.analyze: missing surrogate for " ^ name)

let gradient_of reports slot =
  match List.find_opt (fun (r : Attribution.slot_report) -> r.slot = slot) reports with
  | Some r -> r.gradient
  | None -> 0.0

(* A gradient and a removal delta agree when the structure's predicted
   direction of influence matches the measured loss: positive gradient
   (structure helps) should pair with a negative delta on removal. *)
let signs_agree gradient delta =
  (gradient >= 0.0 && delta <= 0.0) || (gradient <= 0.0 && delta >= 0.0)

let analyze ~models ~spec ~(design : Evaluator.evaluation) =
  let topo = design.Evaluator.topology in
  let gbw_reports = Attribution.slot_gradients (model_of models "gbw") topo in
  let pm_reports = Attribution.slot_gradients (model_of models "pm") topo in
  let deltas =
    Sensitivity.analyze topo ~sizing:design.Evaluator.sizing
      ~cl_f:spec.Into_circuit.Spec.cl_f
  in
  let rows =
    List.map
      (fun (d : Sensitivity.delta) ->
        {
          slot = d.Sensitivity.slot;
          subcircuit = d.Sensitivity.removed;
          gbw_gradient = gradient_of gbw_reports d.Sensitivity.slot;
          pm_gradient = gradient_of pm_reports d.Sensitivity.slot;
          d_gbw_hz = Sensitivity.d_gbw_hz d;
          d_pm_deg = Sensitivity.d_pm_deg d;
        })
      deltas
  in
  let agreements, comparisons =
    List.fold_left
      (fun (agree, total) row ->
        let pairs =
          List.filter_map
            (fun (g, d) -> Option.map (fun delta -> (g, delta)) d)
            [ (row.gbw_gradient, row.d_gbw_hz); (row.pm_gradient, row.d_pm_deg) ]
        in
        List.fold_left
          (fun (a, t) (g, delta) -> ((if signs_agree g delta then a + 1 else a), t + 1))
          (agree, total) pairs)
      (0, 0) rows
  in
  { design; rows; agreements; comparisons }
