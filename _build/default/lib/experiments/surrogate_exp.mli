(** Surrogate-quality experiment (E9): does the WL kernel actually predict
    circuit performance better than the continuous embedding?

    This isolates the paper's central modelling claim from the search loop:
    a pool of random topologies is sized and measured, both surrogates are
    trained on the same split, and their held-out predictions are scored by
    Spearman rank correlation per metric (rank quality is what acquisition
    maximization consumes). *)

type model_score = {
  metric : string;
  wl_spearman : float;
  embedding_spearman : float;
}

type report = {
  n_train : int;
  n_test : int;
  scores : model_score list;
  sims_spent : int;
}

val run :
  ?n_train:int ->
  ?n_test:int ->
  ?progress:(string -> unit) ->
  spec:Into_circuit.Spec.t ->
  sizing_config:Into_core.Sizing.config ->
  seed:int ->
  unit ->
  report
(** Defaults: 40 training and 20 test topologies. *)

val render : Into_circuit.Spec.t -> report -> string
