module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Evaluator = Into_core.Evaluator
module Tlevel = Into_transistor.Tlevel

type row = {
  spec_name : string;
  label : string;
  behavioral : Perf.t;
  transistor : Perf.t option;
  behavioral_fom : float;
  transistor_fom : float option;
  meets_spec : bool option;
  impls : Into_transistor.Mapping.stage_impl list;
}

let evaluate_design ~spec ~label ~topology ~sizing ~behavioral =
  let cl_f = spec.Spec.cl_f in
  match Tlevel.evaluate topology ~sizing ~cl_f with
  | None ->
    {
      spec_name = spec.Spec.name;
      label;
      behavioral;
      transistor = None;
      behavioral_fom = Perf.fom behavioral ~cl_f;
      transistor_fom = None;
      meets_spec = None;
      impls = [];
    }
  | Some r ->
    {
      spec_name = spec.Spec.name;
      label;
      behavioral;
      transistor = Some r.Tlevel.perf;
      behavioral_fom = Perf.fom behavioral ~cl_f;
      transistor_fom = Some (Perf.fom r.Tlevel.perf ~cl_f);
      meets_spec = Some (Perf.satisfies r.Tlevel.perf spec);
      impls = r.Tlevel.impls;
    }

let from_campaign campaign ~methods =
  List.concat_map
    (fun spec ->
      List.filter_map
        (fun m ->
          match Campaign.best_evaluation campaign m spec with
          | None -> None
          | Some (e : Evaluator.evaluation) ->
            Some
              (evaluate_design ~spec ~label:(Methods.name m) ~topology:e.topology
                 ~sizing:e.sizing ~behavioral:e.perf))
        methods)
    Spec.all

let from_refinements (report : Refine_exp.report) =
  List.filter_map
    (fun (c : Refine_exp.case) ->
      match c.Refine_exp.outcome.Into_core.Refine.refined with
      | None -> None
      | Some (topo, sizing, perf) ->
        let label = "R" ^ String.sub c.Refine_exp.label 1 1 in
        Some
          (evaluate_design ~spec:Spec.s5 ~label ~topology:topo ~sizing
             ~behavioral:perf))
    report.Refine_exp.cases
