module Spec = Into_circuit.Spec
module Perf = Into_circuit.Perf
module Topology = Into_circuit.Topology
module Sizing = Into_core.Sizing
module Refine = Into_core.Refine
module Topo_bo = Into_core.Topo_bo
module Candidates = Into_core.Candidates

type case = {
  label : string;
  seed_topology : Topology.t;
  seed_sizing : float array;
  before : Perf.t;
  outcome : Refine.outcome;
}

type report = { cases : case list; models_sims : int }

(* The published designs are "trusted" but predate the S-5 requirement: we
   size each seed to meet the same performance bounds at a 1 nF load (the
   regime it was published for), then ask it to drive S-5's 10 nF.  The
   tenfold load degrades the phase margin below the specification —
   reproducing the paper's setting of reliable designs that narrowly miss a
   new requirement and deserve a minimal, interpretable fix rather than a
   from-scratch synthesis. *)
let seed_spec =
  { Spec.s5 with Spec.name = "S-5-seed"; cl_f = 1e-9; min_gbw_hz = 2.5e6 }

(* The published sizing is a given, not part of the refinement budget, so
   the seeds get a more thorough sizing pass than the in-loop evaluator. *)
let seed_sizing_config =
  { Sizing.default_config with Sizing.n_init = 10; n_iter = 60 }

let seed_sizing ~rng topo =
  let result = Sizing.optimize ~config:seed_sizing_config ~rng ~spec:seed_spec topo in
  match Sizing.best result with
  | Some o -> o.Sizing.sizing
  | None -> invalid_arg "Refine_exp: seed design could not be sized"

let train_models ~scale ~rng =
  let config =
    {
      (Topo_bo.default_config Candidates.Mixed) with
      Topo_bo.n_init = scale.Methods.n_init;
      iterations = scale.Methods.iterations;
      pool = scale.Methods.pool;
    }
  in
  let r = Topo_bo.run ~config ~rng ~spec:Spec.s5 () in
  (r.Topo_bo.models, r.Topo_bo.total_sims)

let run ?models ~scale ~rng () =
  let models, models_sims =
    match models with
    | Some m -> (m, 0)
    | None -> train_models ~scale ~rng
  in
  let one label topo =
    let sizing = seed_sizing ~rng topo in
    let before =
      match Perf.evaluate topo ~sizing ~cl_f:Spec.s5.Spec.cl_f with
      | Some p -> p
      | None -> invalid_arg "Refine_exp: seed does not simulate under S-5"
    in
    let outcome = Refine.refine ~models ~rng ~spec:Spec.s5 ~sizing topo in
    { label; seed_topology = topo; seed_sizing = sizing; before; outcome }
  in
  { cases = [ one "C1" Seeds.c1; one "C2" Seeds.c2 ]; models_sims }
