(** Optimization-curve bookkeeping for Fig. 5 and the "# Sim." column of
    Table II: best-feasible-FoM-so-far as a function of spent circuit
    simulations. *)

val best_fom_at : Into_core.Topo_bo.step list -> sims:int -> float option
(** Best feasible FoM once [sims] simulations have been spent ([None] when
    no feasible design was found within that budget). *)

val sims_to_reach : Into_core.Topo_bo.step list -> target:float -> int option
(** Cumulative simulations when the best feasible FoM first reached
    [target]. *)

val sample_grid : step:int -> max_sims:int -> int list
(** [step; 2*step; ...; <= max_sims]. *)

val mean_curve :
  Into_core.Topo_bo.step list list -> grid:int list -> (int * float * int) list
(** Average curve over several runs: for every grid point, (sims, mean best
    FoM over the runs that already found a feasible design, number of such
    runs).  Runs without a feasible design contribute to the count only. *)
