module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit

let c1 =
  Topology.make
    ~vin_v2:(Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))
    ~vin_vout:(Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))
    ~v1_vout:
      (Subcircuit.Gm_with
         (Subcircuit.Minus, Subcircuit.Forward, Subcircuit.Cap, Subcircuit.Parallel))
    ~v1_gnd:Subcircuit.No_conn ~v2_gnd:Subcircuit.No_conn

let c2 =
  Topology.make
    ~vin_v2:(Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))
    ~vin_vout:Subcircuit.No_conn
    ~v1_vout:(Subcircuit.Passive Subcircuit.Single_c)
    ~v1_gnd:Subcircuit.No_conn
    ~v2_gnd:(Subcircuit.Passive (Subcircuit.Rc Subcircuit.Series))

let c1_expected_move =
  (Topology.V1_vout, Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))

let c2_expected_move =
  ( Topology.Vin_v2,
    Subcircuit.Gm_with
      (Subcircuit.Plus, Subcircuit.Forward, Subcircuit.Cap, Subcircuit.Series) )
