type tech = {
  n : float;
  ut : float;
  i0 : float;
  cox : float;
  cov : float;
  va_per_um : float;
}

let default_tech =
  {
    n = 1.3;
    ut = 0.0258;
    i0 = 0.7e-6;
    cox = 5e-15;  (* F/um^2 *)
    cov = 0.3e-15;  (* F/um *)
    va_per_um = 12.0;
  }

let gm_over_id_of_ic tech ic =
  if ic <= 0.0 then invalid_arg "Ekv.gm_over_id_of_ic: non-positive IC";
  1.0 /. (tech.n *. tech.ut *. (0.5 +. sqrt (0.25 +. ic)))

let max_gm_over_id tech = 1.0 /. (tech.n *. tech.ut)

let ic_of_gm_over_id tech gmid =
  if gmid <= 0.0 || gmid >= max_gm_over_id tech then
    invalid_arg "Ekv.ic_of_gm_over_id: gm/Id outside achievable range";
  let k = 1.0 /. (gmid *. tech.n *. tech.ut) in
  ((k -. 0.5) ** 2.0) -. 0.25

type device = {
  ic : float;
  w_um : float;
  l_um : float;
  id_a : float;
  gm_s : float;
  gm_over_id : float;
  ro_ohm : float;
  cgs_f : float;
  cgd_f : float;
  ft_hz : float;
}

let size_device tech ~gm ~gm_over_id ~l_um =
  if gm <= 0.0 then invalid_arg "Ekv.size_device: non-positive gm";
  if l_um <= 0.0 then invalid_arg "Ekv.size_device: non-positive length";
  let ic = ic_of_gm_over_id tech gm_over_id in
  let id = gm /. gm_over_id in
  let w_over_l = id /. (tech.i0 *. ic) in
  let w_um = w_over_l *. l_um in
  let cgs = (2.0 /. 3.0 *. w_um *. l_um *. tech.cox) +. (tech.cov *. w_um) in
  let cgd = tech.cov *. w_um in
  let ro = tech.va_per_um *. l_um /. id in
  let ft = gm /. (2.0 *. Float.pi *. (cgs +. cgd)) in
  { ic; w_um; l_um; id_a = id; gm_s = gm; gm_over_id; ro_ohm = ro; cgs_f = cgs; cgd_f = cgd; ft_hz = ft }
