module Netlist = Into_circuit.Netlist

type stage_kind = Differential_pair | Common_source

type stage_impl = {
  instance : Netlist.gm_instance;
  kind : stage_kind;
  devices : (string * Ekv.device) list;
  branch_current_a : float;
}

let bias_overhead = 1.2

let mirror_gm_over_id = 10.0
let load_gm_over_id = 8.0

(* The behavioral gm/Id range [5, 25] is inside the EKV achievable range
   (about 29.8 S/A in this technology), but clamp defensively. *)
let clamp_gmid table gmid =
  let tech = Gmid_table.tech table in
  Float.min (0.95 *. Ekv.max_gm_over_id tech) (Float.max 1.0 gmid)

let size table ~gm ~gm_over_id =
  let tech = Gmid_table.tech table in
  let gmid = clamp_gmid table gm_over_id in
  (* Consult the table like a designer would, then dimension the device at
     the tabulated inversion level. *)
  let row = Gmid_table.lookup_by_gm_over_id table gmid in
  Ekv.size_device tech ~gm ~gm_over_id:row.Gmid_table.gm_over_id
    ~l_um:(Gmid_table.l_um table)

let map_instance table (inst : Netlist.gm_instance) =
  let gm = inst.Netlist.gm_value and gmid = inst.Netlist.gm_over_id in
  if String.equal inst.Netlist.gm_name "stage1" then begin
    let input = size table ~gm ~gm_over_id:gmid in
    let mirror_gm = input.Ekv.id_a *. mirror_gm_over_id in
    let mirror = size table ~gm:mirror_gm ~gm_over_id:mirror_gm_over_id in
    {
      instance = inst;
      kind = Differential_pair;
      devices = [ ("M1a", input); ("M1b", input); ("M2a", mirror); ("M2b", mirror) ];
      branch_current_a = 2.0 *. input.Ekv.id_a;
    }
  end
  else begin
    let driver = size table ~gm ~gm_over_id:gmid in
    let load_gm = driver.Ekv.id_a *. load_gm_over_id in
    let load = size table ~gm:load_gm ~gm_over_id:load_gm_over_id in
    {
      instance = inst;
      kind = Common_source;
      devices = [ ("Md", driver); ("Ml", load) ];
      branch_current_a = driver.Ekv.id_a;
    }
  end

let map_design table (netlist : Netlist.t) =
  List.map (map_instance table) netlist.Netlist.gms

let supply_current impls =
  List.fold_left (fun acc s -> acc +. s.branch_current_a) 0.0 impls

let describe s =
  let dev (name, (d : Ekv.device)) =
    Printf.sprintf "%s W/L=%.2f/%.2fum" name d.Ekv.w_um d.Ekv.l_um
  in
  Printf.sprintf "%-12s %-17s Ibranch=%6.2fuA  %s" s.instance.Netlist.gm_name
    (match s.kind with
    | Differential_pair -> "diff-pair+mirror"
    | Common_source -> "common-source")
    (s.branch_current_a *. 1e6)
    (String.concat "  " (List.map dev s.devices))
