lib/transistor/gmid_table.mli: Ekv
