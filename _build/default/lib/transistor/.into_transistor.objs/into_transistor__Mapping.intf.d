lib/transistor/mapping.mli: Ekv Gmid_table Into_circuit
