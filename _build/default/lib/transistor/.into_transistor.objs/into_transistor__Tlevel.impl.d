lib/transistor/tlevel.ml: Ekv Gmid_table Into_circuit Mapping
