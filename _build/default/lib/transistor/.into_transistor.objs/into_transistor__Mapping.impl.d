lib/transistor/mapping.ml: Ekv Float Gmid_table Into_circuit List Printf String
