lib/transistor/ekv.mli:
