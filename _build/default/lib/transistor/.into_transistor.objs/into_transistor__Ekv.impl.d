lib/transistor/ekv.ml: Float
