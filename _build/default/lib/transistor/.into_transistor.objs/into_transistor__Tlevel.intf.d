lib/transistor/tlevel.mli: Ekv Into_circuit Mapping
