lib/transistor/gmid_table.ml: Array Ekv
