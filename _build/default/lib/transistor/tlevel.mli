(** Transistor-level re-evaluation of a behavioral design (Section IV-D).

    The design is mapped to transistors with the gm/id method, then
    re-simulated under a degraded process reflecting extraction reality:
    current-source loads halve the output resistance, junction/wiring
    capacitance raises the parasitic floor, Cgd adds Miller coupling across
    each stage, and the bias network burns extra power.  Power is recomputed
    from the mapped branch currents (a differential first stage doubles its
    current), so — as in Table V — FoM typically drops while well-designed
    behavioral op-amps still meet their specs. *)

type result = {
  perf : Into_circuit.Perf.t;
  impls : Mapping.stage_impl list;
  process : Into_circuit.Process.t;
}

val transistor_process : Ekv.tech -> l_um:float -> Into_circuit.Process.t
(** The degraded process derived from the technology parameters. *)

val evaluate :
  ?tech:Ekv.tech ->
  Into_circuit.Topology.t ->
  sizing:float array ->
  cl_f:float ->
  result option
(** [None] when the transistor-level simulation fails. *)
