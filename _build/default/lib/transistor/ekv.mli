(** Simplified all-region EKV MOSFET model.

    Stands in for foundry device data: it links the inversion coefficient
    [IC] to the gm/Id ratio, current density, transit frequency and
    intrinsic gain — the quantities the gm/id sizing methodology needs.
    Equations follow the standard EKV interpolation
    [gm/Id = 1 / (n Ut (0.5 + sqrt(0.25 + IC)))]. *)

type tech = {
  n : float;  (** subthreshold slope factor *)
  ut : float;  (** thermal voltage, V *)
  i0 : float;  (** technology current [2 n mu Cox Ut^2], A *)
  cox : float;  (** gate capacitance density, F/um^2 *)
  cov : float;  (** overlap capacitance per width, F/um *)
  va_per_um : float;  (** Early voltage per unit length, V/um *)
}

val default_tech : tech
(** A generic 180nm-class technology. *)

val gm_over_id_of_ic : tech -> float -> float
(** gm/Id (S/A) at inversion coefficient [IC > 0]. *)

val ic_of_gm_over_id : tech -> float -> float
(** Inverse of {!gm_over_id_of_ic}.
    @raise Invalid_argument when gm/Id is outside the achievable range. *)

val max_gm_over_id : tech -> float
(** The weak-inversion limit [1/(n Ut)]. *)

type device = {
  ic : float;
  w_um : float;
  l_um : float;
  id_a : float;
  gm_s : float;
  gm_over_id : float;
  ro_ohm : float;
  cgs_f : float;
  cgd_f : float;
  ft_hz : float;
}

val size_device : tech -> gm:float -> gm_over_id:float -> l_um:float -> device
(** Dimension a device delivering transconductance [gm] at the requested
    inversion level with channel length [l_um]. *)
