module Process = Into_circuit.Process
module Netlist = Into_circuit.Netlist
module Perf = Into_circuit.Perf
module Ac = Into_circuit.Ac

type result = {
  perf : Perf.t;
  impls : Mapping.stage_impl list;
  process : Process.t;
}

let transistor_process tech ~l_um =
  {
    Process.behavioral with
    (* The L = 0.5 um devices deliver the behavioral-level Early voltage
       (the gm/id mapping targets it), so DC gain survives extraction ... *)
    Process.va = tech.Ekv.va_per_um *. l_um;
    (* ... while junction/wiring capacitance, slower extracted devices and
       drain-gate overlap erode bandwidth and margin ... *)
    co_floor_f = 12e-15;
    ft_hz = 0.9 *. Process.behavioral.Process.ft_hz;
    cross_cap_factor = 0.05;
    power_overhead = 1.0 (* replaced by the mapped branch currents below *);
  }

let evaluate ?(tech = Ekv.default_tech) topo ~sizing ~cl_f =
  let table = Gmid_table.generate tech in
  let process = transistor_process tech ~l_um:(Gmid_table.l_um table) in
  let netlist = Netlist.build ~process topo ~sizing ~cl_f in
  let impls = Mapping.map_design table netlist in
  let power_w =
    process.Process.vdd *. Mapping.supply_current impls *. Mapping.bias_overhead
  in
  match Ac.analyze netlist with
  | None -> None
  | Some ac ->
    Some
      {
        perf =
          {
            Perf.gain_db = ac.Ac.gain_db;
            gbw_hz = ac.Ac.gbw_hz;
            pm_deg = Perf.stability_checked_pm netlist ac.Ac.pm_deg;
            power_w;
          };
        impls;
        process;
      }
