(** Synthetic gm/id lookup tables.

    The gm/id design methodology replaces analytic device equations with
    tables swept from simulation; here the tables are generated from the
    EKV model over a log grid of inversion coefficients, and the mapping
    layer interpolates them exactly as it would interpolate foundry
    tables.  Keeping the table indirection (instead of calling {!Ekv}
    directly) mirrors the structure of the flow in [16]. *)

type row = {
  ic : float;
  gm_over_id : float;  (** S/A *)
  current_density : float;  (** Id / (W/L), A *)
  ft_hz : float;  (** at l_ref *)
  self_gain : float;  (** gm * ro *)
}

type t

val generate : ?points:int -> ?l_um:float -> Ekv.tech -> t
(** Sweep [IC] log-uniformly over [0.01, 100] (default 128 points) for the
    reference length [l_um] (default 0.5). *)

val rows : t -> row array
val l_um : t -> float
val tech : t -> Ekv.tech

val lookup_by_gm_over_id : t -> float -> row
(** Linear interpolation along the (monotone) gm/Id axis; clamps at the
    table edges. *)
