(** Behavioral-to-transistor mapping (the gm/id method of [16]).

    The amplifier stage connected to [vin] becomes a differential pair with
    a current-mirror load (two input devices at the stage gm, two mirror
    devices, a 2x tail current); every other transconductor becomes a
    common-source amplifier with a current-source load sharing its branch
    current.  Device dimensions come from the gm/id lookup tables. *)

type stage_kind = Differential_pair | Common_source

type stage_impl = {
  instance : Into_circuit.Netlist.gm_instance;
  kind : stage_kind;
  devices : (string * Ekv.device) list;  (** named devices of the stage *)
  branch_current_a : float;  (** total supply current of the stage *)
}

val map_instance :
  Gmid_table.t -> Into_circuit.Netlist.gm_instance -> stage_impl
(** The instance named ["stage1"] maps to a differential pair; everything
    else to a common source stage. *)

val map_design : Gmid_table.t -> Into_circuit.Netlist.t -> stage_impl list

val supply_current : stage_impl list -> float
(** Sum of branch currents, A. *)

val bias_overhead : float
(** Multiplicative power overhead of the bias distribution (1.2). *)

val describe : stage_impl -> string
(** One-line sizing report: devices with W/L in um and bias current. *)
