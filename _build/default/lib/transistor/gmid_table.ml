type row = {
  ic : float;
  gm_over_id : float;
  current_density : float;
  ft_hz : float;
  self_gain : float;
}

type t = { rows : row array; l_um : float; tech : Ekv.tech }

let generate ?(points = 128) ?(l_um = 0.5) tech =
  if points < 2 then invalid_arg "Gmid_table.generate: need at least 2 points";
  let ic_lo = 0.01 and ic_hi = 100.0 in
  let row i =
    let frac = float_of_int i /. float_of_int (points - 1) in
    let ic = ic_lo *. ((ic_hi /. ic_lo) ** frac) in
    let gmid = Ekv.gm_over_id_of_ic tech ic in
    (* A unit-gm device at this inversion level carries all the ratios the
       table needs. *)
    let d = Ekv.size_device tech ~gm:1e-3 ~gm_over_id:gmid ~l_um in
    {
      ic;
      gm_over_id = gmid;
      current_density = tech.Ekv.i0 *. ic;
      ft_hz = d.Ekv.ft_hz;
      self_gain = d.Ekv.gm_s *. d.Ekv.ro_ohm;
    }
  in
  (* IC ascending means gm/Id descending; store ascending by gm/Id. *)
  let rows = Array.init points (fun i -> row (points - 1 - i)) in
  { rows; l_um; tech }

let rows t = Array.copy t.rows
let l_um t = t.l_um
let tech t = t.tech

let interpolate a b frac =
  let lerp x y = x +. (frac *. (y -. x)) in
  {
    ic = lerp a.ic b.ic;
    gm_over_id = lerp a.gm_over_id b.gm_over_id;
    current_density = lerp a.current_density b.current_density;
    ft_hz = lerp a.ft_hz b.ft_hz;
    self_gain = lerp a.self_gain b.self_gain;
  }

let lookup_by_gm_over_id t gmid =
  let rows = t.rows in
  let n = Array.length rows in
  if gmid <= rows.(0).gm_over_id then rows.(0)
  else if gmid >= rows.(n - 1).gm_over_id then rows.(n - 1)
  else begin
    (* Binary search for the bracketing pair on the ascending gm/Id axis. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if rows.(mid).gm_over_id <= gmid then lo := mid else hi := mid
    done;
    let a = rows.(!lo) and b = rows.(!hi) in
    let frac = (gmid -. a.gm_over_id) /. (b.gm_over_id -. a.gm_over_id) in
    interpolate a b frac
  end
