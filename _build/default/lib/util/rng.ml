type t = { gen : Splitmix.t; mutable spare : float option }

let create ~seed = { gen = Splitmix.create seed; spare = None }

let split t = { gen = Splitmix.split t.gen; spare = None }

let float t = Splitmix.float t.gen

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let log_uniform t ~lo ~hi =
  assert (lo > 0.0 && hi >= lo);
  exp (uniform t ~lo:(log lo) ~hi:(log hi))

let int t n = Splitmix.int t.gen n

let bool t = Splitmix.bool t.gen

let gaussian t =
  match t.spare with
  | Some z ->
    t.spare <- None;
    z
  | None ->
    let rec draw () =
      let u = (2.0 *. float t) -. 1.0 and v = (2.0 *. float t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then draw ()
      else
        let m = sqrt (-2.0 *. log s /. s) in
        t.spare <- Some (v *. m);
        u *. m
    in
    draw ()

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let choice_list t = function
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t k n =
  let k = min k n in
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.to_list (Array.sub idx 0 k)
