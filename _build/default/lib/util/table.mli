(** Minimal ASCII table rendering for the experiment reports. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in fixed-width columns separated
    by two spaces, with a dashed rule under the header.  [align] gives the
    per-column alignment (default: first column left, rest right). *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point formatting with [digits] decimals (default 2). *)

val fmt_sci : float -> string
(** Scientific notation with 3 significant digits. *)

val fmt_ratio : float -> string
(** Formats a speedup ratio as e.g. ["3.20x"]. *)
