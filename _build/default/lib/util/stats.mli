(** Summary statistics used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val std : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 points. *)

val median : float list -> float
(** Median; 0 for the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100], linear interpolation. *)

val min_max : float list -> float * float
(** Smallest and largest element; raises [Invalid_argument] on []. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val normalize : float array -> float array * float * float
(** [normalize xs] returns [(zs, mu, sigma)] with [zs.(i) = (xs.(i)-mu)/sigma];
    [sigma] is forced to 1 when the data is constant. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either side is constant.
    @raise Invalid_argument on length mismatch. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (fractional ranks for ties). *)

val erf : float -> float
(** Error function (Abramowitz & Stegun 7.1.26, |error| < 1.5e-7). *)

val normal_cdf : float -> float
(** Standard normal CDF. *)

val normal_pdf : float -> float
(** Standard normal density. *)
