(** Minimal ASCII line plots for terminal reports (Fig. 5 curves, Bode
    magnitude, step responses). *)

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?log_x:bool ->
  (string * (float * float) list) list ->
  string
(** [plot series] renders the series (name, points) into a character grid
    (default 72x20).  Each series uses its own marker; a legend and axis
    ranges are appended.  Series with fewer than one point, NaNs and
    non-positive x under [log_x] are skipped. *)
