(** High-level random sampling on top of {!Splitmix}.

    All stochastic components of the project (initial designs, candidate
    mutation, acquisition optimization, baselines) draw from a [Rng.t], so a
    run is a pure function of its seed. *)

type t

val create : seed:int -> t
(** Fresh generator from an integer seed. *)

val split : t -> t
(** Independent sub-stream; use one stream per run / per component. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). *)

val log_uniform : t -> lo:float -> hi:float -> float
(** Log-uniform in [lo, hi); requires [0 < lo <= hi]. *)

val int : t -> int -> int
(** Uniform in [0, n-1]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k n] draws [min k n] distinct integers from [0, n-1]. *)
