type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = s }

let float t =
  (* 53 high-quality bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t n =
  assert (n > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^63. *)
  let v = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let copy t = { state = t.state }
