type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ | None ->
      Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let all = header :: rows in
  let widths = Array.make ncols 0 in
  let note_row r =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) r
  in
  List.iter note_row all;
  let line r =
    let cells =
      List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) r
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let fmt_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x

let fmt_sci x = Printf.sprintf "%.3g" x

let fmt_ratio x = Printf.sprintf "%.2fx" x
