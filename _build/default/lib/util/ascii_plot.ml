let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let finite (x, y) = Float.is_finite x && Float.is_finite y

let plot ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y") ?(log_x = false)
    series =
  let clean =
    List.map
      (fun (name, pts) ->
        let pts = List.filter finite pts in
        let pts = if log_x then List.filter (fun (x, _) -> x > 0.0) pts else pts in
        (name, List.map (fun (x, y) -> ((if log_x then log10 x else x), y)) pts))
      series
  in
  let all = List.concat_map snd clean in
  match all with
  | [] -> "(no data)"
  | _ ->
    let xs = List.map fst all and ys = List.map snd all in
    let x_lo, x_hi = Stats.min_max xs and y_lo, y_hi = Stats.min_max ys in
    let x_span = if x_hi -. x_lo < 1e-12 then 1.0 else x_hi -. x_lo in
    let y_span = if y_hi -. y_lo < 1e-12 then 1.0 else y_hi -. y_lo in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun k (_, pts) ->
        let mark = markers.(k mod Array.length markers) in
        List.iter
          (fun (x, y) ->
            let col =
              int_of_float (Float.round ((x -. x_lo) /. x_span *. float_of_int (width - 1)))
            in
            let row =
              height - 1
              - int_of_float
                  (Float.round ((y -. y_lo) /. y_span *. float_of_int (height - 1)))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- mark)
          pts)
      clean;
    let buf = Buffer.create ((width + 4) * (height + 4)) in
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "  %s: %.3g .. %.3g%s   %s: %.3g .. %.3g\n" x_label
         (if log_x then 10.0 ** x_lo else x_lo)
         (if log_x then 10.0 ** x_hi else x_hi)
         (if log_x then " (log)" else "")
         y_label y_lo y_hi);
    List.iteri
      (fun k (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" markers.(k mod Array.length markers) name))
      clean;
    Buffer.contents buf
