(** SplitMix64: a small, fast, splittable pseudo-random number generator.

    Used as the single source of randomness in the whole project so that
    every experiment is reproducible from an integer seed, independently of
    the OCaml stdlib [Random] state.  The generator follows Steele, Lea and
    Flood, "Fast splittable pseudorandom number generators" (OOPSLA 2014). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val split : t -> t
(** [split t] forks an independent generator stream; [t] advances. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val copy : t -> t
(** Duplicate the current state (same future outputs). *)
