let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let std = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. (n -. 1.0))

let sorted xs = List.sort compare xs

let percentile p = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    if n = 1 then a.(0)
    else
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median xs = percentile 50.0 xs

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let normalize xs =
  let l = Array.to_list xs in
  let mu = mean l in
  let sigma =
    let s = std l in
    if s < 1e-12 then 1.0 else s
  in
  (Array.map (fun x -> (x -. mu) /. sigma) xs, mu, sigma)

let pearson xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let mx = mean (Array.to_list xs) and my = mean (Array.to_list ys) in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx < 1e-300 || !syy < 1e-300 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
  end

(* Fractional ranks: ties share the average of their positions. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys = pearson (ranks xs) (ranks ys)

let erf x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)
