lib/util/rng.mli:
