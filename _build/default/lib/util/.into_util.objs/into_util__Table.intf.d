lib/util/table.mli:
