lib/util/rng.ml: Array List Splitmix
