lib/util/splitmix.ml: Int64
