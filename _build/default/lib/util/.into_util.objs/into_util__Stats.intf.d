lib/util/stats.mli:
