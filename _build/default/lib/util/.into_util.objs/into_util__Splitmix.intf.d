lib/util/splitmix.mli:
