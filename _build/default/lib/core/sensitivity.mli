(** Remove-and-resimulate sensitivity analysis.

    Section IV-B validates the WL-GP gradients against a direct experiment:
    delete one variable subcircuit, keep every other component size, and
    simulate again.  The change of each metric is the ground-truth
    sensitivity the surrogate gradient is compared to. *)

type delta = {
  slot : Into_circuit.Topology.slot;
  removed : Into_circuit.Subcircuit.t;
  before : Into_circuit.Perf.t;
  after : Into_circuit.Perf.t option;  (** [None]: simulation failed *)
}

val d_gain_db : delta -> float option
val d_gbw_hz : delta -> float option
val d_pm_deg : delta -> float option
val d_power_w : delta -> float option

val remove_slot :
  Into_circuit.Topology.t ->
  sizing:float array ->
  Into_circuit.Topology.slot ->
  (Into_circuit.Topology.t * float array) option
(** The topology with that slot disconnected and the transferred sizing;
    [None] when the slot is already unconnected. *)

val analyze :
  Into_circuit.Topology.t -> sizing:float array -> cl_f:float -> delta list
(** One delta per connected variable slot.
    @raise Invalid_argument when the baseline simulation itself fails. *)
