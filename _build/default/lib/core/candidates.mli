(** Candidate generation for the discrete topology space (Section III-D).

    INTO-OA fills half the pool by mutating the current best topologies
    (local exploitation; each variable subcircuit mutates with probability
    1/5 so the expected number of changes is one) and half by uniform
    random sampling (global exploration).  The ablations of the paper use a
    single source.  Already-visited topologies are never proposed again. *)

type strategy =
  | Random_only  (** INTO-OA-r *)
  | Mutation_only  (** INTO-OA-m *)
  | Mixed  (** INTO-OA: half mutation, half random *)

val strategy_name : strategy -> string

val generate :
  rng:Into_util.Rng.t ->
  strategy:strategy ->
  pool:int ->
  best:Into_circuit.Topology.t list ->
  visited:(Into_circuit.Topology.t -> bool) ->
  Into_circuit.Topology.t list
(** Up to [pool] distinct unvisited candidates.  Mutation seeds are drawn
    uniformly from [best] (falling back to random sampling when [best] is
    empty).  The pool can come back smaller than requested only when the
    unvisited space is nearly exhausted. *)
