(** Gradient-guided topology refinement (Section III-C, evaluated in IV-C).

    Given a trusted design that misses some specification, the refinement
    loop (1) picks the critical (most violated) metric, (2) uses the WL-GP
    slot gradients to find the variable subcircuit that hurts that metric
    the most, (3) replaces it with the most promising alternative type —
    ranked by the surrogate's prediction for the modified topology — and
    (4) resizes only the modified subcircuit's parameters with a small
    sizing budget.  If the design still fails, the next-ranked alternative
    is tried — first the remaining options of the worst slot, then the
    best-predicted replacements in the other slots.  Untouched components
    keep their sizes, preserving the reliability of the original design. *)

type move = {
  slot : Into_circuit.Topology.slot;
  from_sub : Into_circuit.Subcircuit.t;
  to_sub : Into_circuit.Subcircuit.t;
  predicted_metric : float;  (** surrogate prediction that ranked this move *)
  achieved : Into_circuit.Perf.t option;  (** simulated result of the move *)
}

type outcome = {
  original_perf : Into_circuit.Perf.t;
  critical_metric : string option;  (** [None] when already feasible *)
  refined :
    (Into_circuit.Topology.t * float array * Into_circuit.Perf.t) option;
      (** successful refinement: topology, physical sizing, performance *)
  moves : move list;  (** chronological *)
  n_sims : int;
}

val refine :
  ?max_moves:int ->
  ?sizing_config:Sizing.config ->
  models:(string * Into_gp.Wl_gp.t) list ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  sizing:float array ->
  Into_circuit.Topology.t ->
  outcome
(** [max_moves] defaults to 5; [sizing_config] defaults to the paper's
    40-simulation budget.  [models] are WL-GP surrogates as returned by
    {!Topo_bo.run} / {!Topo_bo.fit_metric_models} for the same spec.
    @raise Invalid_argument when the original design does not simulate or
    a needed surrogate is missing. *)
