(** Topology evaluation: size a candidate topology with the inner BO and
    report the resulting performance as the topology's observation.

    The reported metrics belong to the best sizing found: the highest-FoM
    feasible point when one exists, otherwise the minimum-violation point.
    [n_sims] counts every circuit simulation spent, which is the cost unit
    of all experiment tables. *)

type evaluation = {
  topology : Into_circuit.Topology.t;
  sizing : float array;  (** physical parameter values of the chosen point *)
  perf : Into_circuit.Perf.t;
  feasible : bool;
  fom : float;
  n_sims : int;  (** simulations spent sizing this topology *)
}

val evaluate :
  ?sizing_config:Sizing.config ->
  rng:Into_util.Rng.t ->
  spec:Into_circuit.Spec.t ->
  Into_circuit.Topology.t ->
  evaluation option
(** [None] when every sizing attempt failed to simulate (the simulation
    budget is still spent; callers should treat this as a dead topology). *)

val sims_of_failed_evaluation : sizing_config:Sizing.config -> int
(** Budget charged when {!evaluate} returns [None]. *)
