module Topology = Into_circuit.Topology
module Rng = Into_util.Rng

type strategy = Random_only | Mutation_only | Mixed

let strategy_name = function
  | Random_only -> "INTO-OA-r"
  | Mutation_only -> "INTO-OA-m"
  | Mixed -> "INTO-OA"

let generate ~rng ~strategy ~pool ~best ~visited =
  let seeds = Array.of_list best in
  let n_mutation =
    match strategy with
    | Random_only -> 0
    | Mutation_only -> pool
    | Mixed -> pool / 2
  in
  let chosen = Hashtbl.create (2 * pool) in
  let taken = ref [] in
  let n_taken = ref 0 in
  let try_add topo =
    let idx = Topology.to_index topo in
    if (not (Hashtbl.mem chosen idx)) && not (visited topo) then begin
      Hashtbl.replace chosen idx ();
      taken := topo :: !taken;
      incr n_taken
    end
  in
  let propose kind =
    match kind with
    | `Mutation when Array.length seeds > 0 -> Topology.mutate rng (Rng.choice rng seeds)
    | `Mutation | `Random -> Topology.random rng
  in
  (* Draw with a bounded number of misses so a nearly exhausted space (or a
     fully visited mutation neighborhood) cannot loop forever. *)
  let fill kind target =
    let max_attempts = 30 * pool in
    let attempts = ref 0 in
    while !n_taken < target && !attempts < max_attempts do
      incr attempts;
      try_add (propose kind)
    done
  in
  fill `Mutation n_mutation;
  fill `Random pool;
  List.rev !taken
