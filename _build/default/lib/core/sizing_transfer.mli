(** Carrying sizing values across topology edits.

    When a subcircuit is removed or replaced, the remaining components keep
    their sizes (that is what makes refinement cheap and trustworthy); any
    parameter that only exists in the new topology starts at the mid-range
    default and is the natural target of the "resize only the modified
    part" step. *)

val transfer :
  from_schema:Into_circuit.Params.schema ->
  from_sizing:float array ->
  to_schema:Into_circuit.Params.schema ->
  float array
(** Physical sizing vector for [to_schema]: parameters are matched by name;
    unmatched ones get the schema default. *)

val new_dims :
  from_schema:Into_circuit.Params.schema ->
  to_schema:Into_circuit.Params.schema ->
  int list
(** Indices (in [to_schema]) of parameters that have no counterpart in
    [from_schema]. *)
