module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec

type metric = { name : string; extract : Perf.t -> float }

let log10_floor floor x = log10 (Float.max x floor)

let metrics =
  [
    { name = "gain"; extract = (fun p -> p.Perf.gain_db) };
    { name = "gbw"; extract = (fun p -> log10_floor 1.0 p.Perf.gbw_hz) };
    { name = "pm"; extract = (fun p -> p.Perf.pm_deg) };
    { name = "power"; extract = (fun p -> log10_floor 1e-12 p.Perf.power_w) };
  ]

let bounds spec =
  [
    (spec.Spec.min_gain_db, `Min);
    (log10 spec.Spec.min_gbw_hz, `Min);
    (spec.Spec.min_pm_deg, `Min);
    (log10 spec.Spec.max_power_w, `Max);
  ]

let metric_values perf = Array.of_list (List.map (fun m -> m.extract perf) metrics)

let fom_value perf ~cl_f = log10_floor 1e-6 (Perf.fom perf ~cl_f)

let penalized_fom_value perf spec ~cl_f =
  fom_value perf ~cl_f -. (2.0 *. Perf.violation perf spec)

let feasible = Perf.satisfies
