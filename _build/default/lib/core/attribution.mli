(** Identification of performance-critical circuit structures (Section
    III-C / IV-B).

    The WL-GP posterior mean is linear in interpretable feature counts, so
    its analytic gradient (Eq. 5) measures how strongly each structure
    drives a performance metric.  A variable subcircuit's influence is the
    summed gradient of the features rooted at its graph node across all WL
    iterations: the h=0 term is the subcircuit itself, higher iterations
    capture how it is wired. *)

type slot_report = {
  slot : Into_circuit.Topology.slot;
  subcircuit : Into_circuit.Subcircuit.t;
  gradient : float;
      (** d(metric)/d(count of this slot's rooted structures); positive
          means the structure pushes the metric up. *)
}

val slot_gradients :
  Into_gp.Wl_gp.t -> Into_circuit.Topology.t -> slot_report list
(** One report per connected variable slot of the topology. *)

val top_features :
  Into_gp.Wl_gp.t -> Into_circuit.Topology.t -> n:int -> (string * float) list
(** The [n] features of the topology with the largest absolute gradient,
    as (human-readable structure, gradient) pairs, sorted by |gradient|
    descending.  This is the designer-facing "which structures matter"
    report. *)
