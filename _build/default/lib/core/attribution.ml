module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Wl = Into_graph.Wl
module Wl_gp = Into_gp.Wl_gp
module Circuit_graph = Into_graph.Circuit_graph

type slot_report = {
  slot : Topology.slot;
  subcircuit : Subcircuit.t;
  gradient : float;
}

let slot_gradients model topo =
  let g = Circuit_graph.build topo in
  let dict = Wl_gp.dict model in
  let rows = Wl.node_feature_ids dict ~h:(Wl_gp.h model) g in
  let slot_gradient node =
    Array.fold_left
      (fun acc row -> acc +. Wl_gp.feature_gradient model g ~feature_id:row.(node))
      0.0 rows
  in
  List.filter_map
    (fun slot ->
      match Circuit_graph.slot_node topo slot with
      | None -> None
      | Some node ->
        Some { slot; subcircuit = Topology.get topo slot; gradient = slot_gradient node })
    Topology.slots

let top_features model topo ~n =
  let g = Circuit_graph.build topo in
  let dict = Wl_gp.dict model in
  let grads = Wl_gp.present_feature_gradients model g in
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) grads
  in
  let rec take k = function
    | [] -> []
    | (id, grad) :: rest ->
      if k = 0 then [] else (Wl.describe dict id, grad) :: take (k - 1) rest
  in
  take n sorted
