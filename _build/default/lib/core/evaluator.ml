module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec

type evaluation = {
  topology : Into_circuit.Topology.t;
  sizing : float array;
  perf : Perf.t;
  feasible : bool;
  fom : float;
  n_sims : int;
}

let evaluate ?(sizing_config = Sizing.default_config) ~rng ~spec topo =
  let result = Sizing.optimize ~config:sizing_config ~rng ~spec topo in
  match Sizing.best result with
  | None -> None
  | Some o ->
    Some
      {
        topology = topo;
        sizing = o.Sizing.sizing;
        perf = o.Sizing.perf;
        feasible = Perf.satisfies o.Sizing.perf spec;
        fom = Perf.fom o.Sizing.perf ~cl_f:spec.Spec.cl_f;
        n_sims = result.Sizing.n_sims;
      }

let sims_of_failed_evaluation ~sizing_config =
  sizing_config.Sizing.n_init + sizing_config.Sizing.n_iter
