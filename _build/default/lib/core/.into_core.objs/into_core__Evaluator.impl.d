lib/core/evaluator.ml: Into_circuit Sizing
