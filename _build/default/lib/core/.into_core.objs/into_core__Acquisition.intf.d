lib/core/acquisition.mli:
