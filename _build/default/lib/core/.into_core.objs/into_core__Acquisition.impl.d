lib/core/acquisition.ml: Float Into_util List
