lib/core/topo_bo.ml: Acquisition Array Candidates Evaluator Float Hashtbl Into_circuit Into_gp Into_graph Into_util List Objective Option Sizing
