lib/core/attribution.ml: Array Float Into_circuit Into_gp Into_graph List
