lib/core/sizing_transfer.mli: Into_circuit
