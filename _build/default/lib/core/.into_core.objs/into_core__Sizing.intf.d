lib/core/sizing.mli: Into_circuit Into_util
