lib/core/attribution.mli: Into_circuit Into_gp
