lib/core/refine.mli: Into_circuit Into_gp Into_util Sizing
