lib/core/topo_bo.mli: Candidates Evaluator Into_circuit Into_gp Into_graph Into_util Sizing
