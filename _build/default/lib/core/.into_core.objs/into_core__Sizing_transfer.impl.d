lib/core/sizing_transfer.ml: Array Into_circuit List
