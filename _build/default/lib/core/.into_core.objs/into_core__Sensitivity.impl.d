lib/core/sensitivity.ml: Into_circuit List Option Sizing_transfer
