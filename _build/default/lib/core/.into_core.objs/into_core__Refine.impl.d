lib/core/refine.ml: Array Attribution Into_circuit Into_gp Into_graph List Objective Option Sizing Sizing_transfer
