lib/core/sensitivity.mli: Into_circuit
