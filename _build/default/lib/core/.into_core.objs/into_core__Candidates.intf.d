lib/core/candidates.mli: Into_circuit Into_util
