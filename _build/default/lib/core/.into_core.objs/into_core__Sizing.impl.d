lib/core/sizing.ml: Acquisition Array Float Into_circuit Into_gp Into_linalg Into_util List Objective Option
