lib/core/evaluator.mli: Into_circuit Into_util Sizing
