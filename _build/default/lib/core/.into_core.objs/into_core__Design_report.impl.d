lib/core/design_report.ml: Attribution Into_circuit List Option Printf Sensitivity String
