lib/core/objective.mli: Into_circuit
