lib/core/objective.ml: Array Float Into_circuit List
