lib/core/candidates.ml: Array Hashtbl Into_circuit Into_util List
