lib/core/design_report.mli: Into_circuit Into_gp
