let expected_improvement ~mean ~std ~best =
  if std <= 0.0 then Float.max 0.0 (mean -. best)
  else
    let z = (mean -. best) /. std in
    let ei = ((mean -. best) *. Into_util.Stats.normal_cdf z) +. (std *. Into_util.Stats.normal_pdf z) in
    Float.max 0.0 ei

let probability_above ~mean ~std ~bound =
  if std <= 0.0 then if mean > bound then 1.0 else 0.0
  else Into_util.Stats.normal_cdf ((mean -. bound) /. std)

let probability_feasible ~mean ~std ~bound ~sense =
  match sense with
  | `Min -> probability_above ~mean ~std ~bound
  | `Max -> 1.0 -. probability_above ~mean ~std ~bound

let feasibility_only feas = List.fold_left ( *. ) 1.0 feas

let weighted_ei ~w ~ei ~feasibility =
  if w < 0.0 || w > 1.0 then invalid_arg "Acquisition.weighted_ei: w outside [0,1]";
  let pf = feasibility_only feasibility in
  (Float.max ei 1e-300 ** w) *. (Float.max pf 1e-300 ** (1.0 -. w))
