(** Surrogate-space transforms shared by the sizing BO and the topology BO.

    GBW, power and FoM span many decades, so their surrogates model log10
    values; gain is already logarithmic (dB) and phase margin is linear.
    All transforms are strictly monotone, so constraint thresholds transfer
    directly to the transformed space. *)

type metric = { name : string; extract : Into_circuit.Perf.t -> float }

val metrics : metric list
(** The four constrained metrics in canonical order: gain (dB), log10 GBW,
    PM (deg), log10 power. *)

val bounds : Into_circuit.Spec.t -> (float * [ `Min | `Max ]) list
(** Transformed constraint bounds, parallel to {!metrics}. *)

val metric_values : Into_circuit.Perf.t -> float array
(** Transformed metric vector, parallel to {!metrics}. *)

val fom_value : Into_circuit.Perf.t -> cl_f:float -> float
(** Transformed objective: [log10 (max FoM 1e-6)]. *)

val penalized_fom_value :
  Into_circuit.Perf.t -> Into_circuit.Spec.t -> cl_f:float -> float
(** The surrogate target for the objective GPs:
    [fom_value - 2 * violation].  Infeasible designs often show spectacular
    raw FoM (huge GBW with no phase margin), which would teach the
    objective surrogate to chase infeasible regions; the penalty keeps the
    target continuous at the feasibility boundary while ranking feasible
    designs purely by FoM. *)

val feasible : Into_circuit.Perf.t -> Into_circuit.Spec.t -> bool
(** Same as {!Into_circuit.Perf.satisfies} (untransformed). *)
