(** Acquisition functions for constrained Bayesian optimization.

    The weighted expected improvement (wEI) of [1] combines the expected
    improvement of the objective with the probability that every constraint
    GP predicts a feasible value:
    [wEI = EI^w * (prod_i PF_i)^(1-w)].  Before any feasible observation
    exists the EI factor is dropped and the acquisition reduces to the
    feasibility probability, steering the search into the feasible region
    first. *)

val expected_improvement : mean:float -> std:float -> best:float -> float
(** EI for maximization: [E max(0, f - best)] under N(mean, std^2).
    Zero std collapses to [max 0 (mean - best)]. *)

val probability_above : mean:float -> std:float -> bound:float -> float
(** [P(f > bound)]. *)

val probability_feasible :
  mean:float -> std:float -> bound:float -> sense:[ `Min | `Max ] -> float
(** [`Min] means the metric must exceed the bound (e.g. gain), [`Max] means
    it must stay below (e.g. power). *)

val weighted_ei : w:float -> ei:float -> feasibility:float list -> float
(** [EI^w * (prod feasibility)^(1-w)] with [w] in [0, 1]. *)

val feasibility_only : float list -> float
(** Product of feasibility probabilities. *)
