module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Params = Into_circuit.Params
module Perf = Into_circuit.Perf

type delta = {
  slot : Topology.slot;
  removed : Subcircuit.t;
  before : Perf.t;
  after : Perf.t option;
}

let diff f d = Option.map (fun after -> f after -. f d.before) d.after
let d_gain_db d = diff (fun p -> p.Perf.gain_db) d
let d_gbw_hz d = diff (fun p -> p.Perf.gbw_hz) d
let d_pm_deg d = diff (fun p -> p.Perf.pm_deg) d
let d_power_w d = diff (fun p -> p.Perf.power_w) d

let remove_slot topo ~sizing slot =
  if Subcircuit.equal (Topology.get topo slot) Subcircuit.No_conn then None
  else
    let reduced = Topology.set topo slot Subcircuit.No_conn in
    let from_schema = Params.schema topo in
    let to_schema = Params.schema reduced in
    let sizing' =
      Sizing_transfer.transfer ~from_schema ~from_sizing:sizing ~to_schema
    in
    Some (reduced, sizing')

let analyze topo ~sizing ~cl_f =
  let before =
    match Perf.evaluate topo ~sizing ~cl_f with
    | Some p -> p
    | None -> invalid_arg "Sensitivity.analyze: baseline simulation failed"
  in
  List.filter_map
    (fun slot ->
      match remove_slot topo ~sizing slot with
      | None -> None
      | Some (reduced, sizing') ->
        Some
          {
            slot;
            removed = Topology.get topo slot;
            before;
            after = Perf.evaluate reduced ~sizing:sizing' ~cl_f;
          })
    Topology.slots
