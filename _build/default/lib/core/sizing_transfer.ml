module Params = Into_circuit.Params

let name_map schema sizing =
  List.mapi (fun i p -> (p.Params.name, sizing.(i))) (Params.params schema)

let transfer ~from_schema ~from_sizing ~to_schema =
  if Array.length from_sizing <> Params.dim from_schema then
    invalid_arg "Sizing_transfer.transfer: sizing dimension mismatch";
  let values = name_map from_schema from_sizing in
  let defaults = Params.denormalize to_schema (Params.default_point to_schema) in
  Array.of_list
    (List.mapi
       (fun i p ->
         match List.assoc_opt p.Params.name values with
         | Some v -> v
         | None -> defaults.(i))
       (Params.params to_schema))

let new_dims ~from_schema ~to_schema =
  let old_names = List.map (fun p -> p.Params.name) (Params.params from_schema) in
  List.concat
    (List.mapi
       (fun i p -> if List.mem p.Params.name old_names then [] else [ i ])
       (Params.params to_schema))
