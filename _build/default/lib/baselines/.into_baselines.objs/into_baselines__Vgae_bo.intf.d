lib/baselines/vgae_bo.mli: Into_circuit Into_core Into_util
