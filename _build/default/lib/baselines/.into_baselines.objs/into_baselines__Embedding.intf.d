lib/baselines/embedding.mli: Into_circuit
