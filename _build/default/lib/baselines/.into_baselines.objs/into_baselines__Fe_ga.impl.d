lib/baselines/fe_ga.ml: Array Hashtbl Into_circuit Into_core Into_util List Option
