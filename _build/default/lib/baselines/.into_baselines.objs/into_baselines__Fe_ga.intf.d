lib/baselines/fe_ga.mli: Into_circuit Into_core Into_util
