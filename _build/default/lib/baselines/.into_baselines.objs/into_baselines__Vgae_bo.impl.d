lib/baselines/vgae_bo.ml: Array Embedding Hashtbl Into_circuit Into_core Into_gp Into_linalg Into_util List Option
