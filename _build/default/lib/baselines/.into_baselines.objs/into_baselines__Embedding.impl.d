lib/baselines/embedding.ml: Array Into_circuit Into_util List
