module Topology = Into_circuit.Topology

let dim = 8

let one_hot_dim =
  List.fold_left (fun acc slot -> acc + Array.length (Topology.allowed slot)) 0 Topology.slots

let one_hot topo =
  let v = Array.make one_hot_dim 0.0 in
  let offset = ref 0 in
  List.iter
    (fun slot ->
      let types = Topology.allowed slot in
      let current = Topology.get topo slot in
      Array.iteri
        (fun i t ->
          if Into_circuit.Subcircuit.equal t current then v.(!offset + i) <- 1.0)
        types;
      offset := !offset + Array.length types)
    Topology.slots;
  v

(* Fixed projection matrix, regenerated deterministically from a constant
   seed: the same "trained encoder" for every run and process. *)
let projection =
  let rng = Into_util.Rng.create ~seed:0x5EED_CAFE in
  Array.init dim (fun _ ->
      Array.init one_hot_dim (fun _ -> Into_util.Rng.gaussian rng /. sqrt (float_of_int dim)))

let embed topo =
  let x = one_hot topo in
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun i r -> acc := !acc +. (r *. x.(i))) row;
      !acc)
    projection
