(** Fixed continuous graph embedding — the VGAE substitute.

    A variational graph autoencoder maps circuit graphs into a continuous
    latent space; here a deterministic random projection of the one-hot
    (slot, subcircuit-type) encoding into a lower-dimensional latent plays
    that role (see DESIGN.md).  The projection is seeded by a constant, so
    the embedding is identical across runs, mimicking a pre-trained
    encoder.  Because 49 one-hot coordinates are squeezed into 8 latent
    dimensions, nearby latent points can decode to structurally unrelated
    topologies — exactly the performance-discontinuity weakness of the
    continuous-latent approach that INTO-OA's graph-native kernel avoids. *)

val dim : int
(** Latent dimensionality (8). *)

val embed : Into_circuit.Topology.t -> float array
(** Deterministic latent vector of a topology. *)

val one_hot : Into_circuit.Topology.t -> float array
(** The 49-dimensional indicator encoding behind the projection. *)

val one_hot_dim : int
