type t = {
  vdd : float;
  va : float;
  ft_hz : float;
  co_floor_f : float;
  power_overhead : float;
  cross_cap_factor : float;
}

let behavioral =
  {
    vdd = 1.8;
    va = 6.0;
    ft_hz = 1.5e9;
    co_floor_f = 10e-15;
    power_overhead = 1.0;
    cross_cap_factor = 0.0;
  }

let gm_lo = 1e-6
let gm_hi = 2e-3
let gmid_lo = 5.0
let gmid_hi = 25.0
let r_lo = 1e3
let r_hi = 1e8
let c_lo = 1e-14
let c_hi = 1e-10

let bias_current ~gm ~gm_over_id = gm /. gm_over_id
let output_resistance p ~id = p.va /. id

let transit_frequency p ~gm_over_id = p.ft_hz *. ((gmid_lo /. gm_over_id) ** 2.5)

let output_capacitance p ~gm ~gm_over_id =
  (gm /. (2.0 *. Float.pi *. transit_frequency p ~gm_over_id)) +. p.co_floor_f
