(** SPICE netlist export.

    Emits the behavioral design as a standard .sp deck (G elements for the
    transconductors with their parasitics spelled out, R/C for passives,
    an .ac statement matching our sweep), so a design found by INTO-OA can
    be cross-checked in any external simulator — the bridge back to the
    Hspice flow of the paper. *)

val behavioral : ?title:string -> Topology.t -> sizing:float array -> cl_f:float -> string
(** The full SPICE deck as a string.
    @raise Invalid_argument on a sizing/schema mismatch. *)
