(** The 25-type algebra of behavior-level variable subcircuits (Section II-C).

    A variable subcircuit sits between a pair of circuit nodes and is one of:
    - a single R or C;
    - R and C connected in parallel or in series;
    - a transconductor [gm] with either polarity and direction;
    - a [gm] combined with an R or C in series or in parallel
      (2 polarities x 2 directions x 2 elements x 2 combinations = 16);
    - no connection.

    Transconductors are amplifier stages: they carry the parasitic
    [Ro]/[Co] model of Section II-C and draw bias current. *)

type element = Res | Cap
type combine = Series | Parallel
type polarity = Plus | Minus

type direction = Forward | Backward
(** Orientation of a floating transconductor between slot endpoints (a, b):
    [Forward] senses [a] and drives [b]; [Backward] senses [b] and drives
    [a].  Slots anchored at [vin] only admit [Forward]. *)

type passive_kind =
  | Single_r
  | Single_c
  | Rc of combine

type t =
  | No_conn
  | Passive of passive_kind
  | Gm of polarity * direction
  | Gm_with of polarity * direction * element * combine

val all : t list
(** All 25 types, in a fixed canonical order. *)

val passive_only : t list
(** The 5 types allowed between an internal node and ground:
    no connection plus the four passives. *)

val gm_from_input : t list
(** The 7 types allowed on slots anchored at [vin]: no connection, +/-gm,
    and +/-gm with a series R or series C. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** Compact designer-facing name, e.g. ["RCs"], ["-gmRs"], ["+gm<-"]. *)

val label : t -> string
(** Graph-node label used by the WL kernel (stable across runs; includes
    polarity and direction, since the undirected circuit graph would
    otherwise merge distinct designs). *)

val is_gm : t -> bool
(** Whether the subcircuit contains a transconductor (and hence burns power
    and carries parasitics). *)

val param_kinds : t -> [ `Gm | `Gm_over_id | `R | `C ] list
(** Tunable parameters contributed by this subcircuit type, in the order the
    sizing vector stores them. *)
