(** The behavior-level topology design space for three-stage op-amps.

    A topology fixes the type of each of the five variable subcircuit slots;
    the three main amplifier stages (-gm1, +gm2, -gm3) are always present.
    With the rule set R of Section II-C the space holds
    7 x 7 x 25 x 5 x 5 = 30625 distinct topologies. *)

type slot =
  | Vin_v2      (** feedforward path, vin -> v2 (7 types) *)
  | Vin_vout    (** feedforward path, vin -> vout (7 types) *)
  | V1_vout     (** compensation path between v1 and vout (25 types) *)
  | V1_gnd      (** shunt at v1 (5 types) *)
  | V2_gnd      (** shunt at v2 (5 types) *)

val slots : slot list
(** The five slots in canonical order. *)

val slot_name : slot -> string

val allowed : slot -> Subcircuit.t array
(** The rule set R: subcircuit types admissible in a slot. *)

type t
(** An immutable topology: one subcircuit type per slot. *)

val make :
  vin_v2:Subcircuit.t ->
  vin_vout:Subcircuit.t ->
  v1_vout:Subcircuit.t ->
  v1_gnd:Subcircuit.t ->
  v2_gnd:Subcircuit.t ->
  t
(** @raise Invalid_argument when a subcircuit type violates the rule set. *)

val get : t -> slot -> Subcircuit.t
val set : t -> slot -> Subcircuit.t -> t
(** Functional update. @raise Invalid_argument on a rule violation. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val space_size : int
(** 30625. *)

val to_index : t -> int
(** Bijection onto [0, space_size-1] (mixed-radix encoding). *)

val of_index : int -> t
(** Inverse of {!to_index}. @raise Invalid_argument out of range. *)

val random : Into_util.Rng.t -> t
(** Uniform sample from the design space. *)

val mutate : Into_util.Rng.t -> t -> t
(** One mutation step of the candidate generator: every slot is redrawn
    (to a different admissible type) with probability 1/5, so the expected
    number of mutated subcircuits is one; if no slot fired, one uniformly
    chosen slot is forced to change, guaranteeing the result differs from
    the input. *)

val hamming : t -> t -> int
(** Number of slots whose types differ. *)

val to_string : t -> string
(** e.g. ["[vin-v2:none vin-vout:-gm-> v1-vout:RCs v1-gnd:none v2-gnd:none]"] *)

val nmc : unit -> t
(** A classic nested-Miller-style seed: series-RC compensation between v1 and
    vout, everything else unconnected.  Used by examples and tests. *)
