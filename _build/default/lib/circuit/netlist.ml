type node = Gnd | Vin | N of int

let v1 = N 0
let v2 = N 1
let vout = N 2

type prim =
  | Conductance of node * node * float
  | Capacitance of node * node * float
  | Series_rc of node * node * float * float
  | Vccs of { ctrl : node; out : node; gm : float; pole_hz : float }

type gm_instance = {
  gm_name : string;
  gm_value : float;
  gm_over_id : float;
  bias_a : float;
}

type t = {
  prims : prim list;
  n_unknowns : int;
  power_w : float;
  gms : gm_instance list;
}

type builder = {
  process : Process.t;
  mutable rev_prims : prim list;
  mutable next_node : int;
  mutable rev_gms : gm_instance list;
}

let emit b p = b.rev_prims <- p :: b.rev_prims

let fresh_node b =
  let n = b.next_node in
  b.next_node <- n + 1;
  N n

(* A transconductor output: the VCCS current plus its Ro/Co parasitics at
   the driven node, and an optional Cgd-like coupling back to the control
   node (transistor-level process only). *)
let emit_gm b ~name ~ctrl ~out ~signed_gm ~gm ~gm_over_id =
  let id = Process.bias_current ~gm ~gm_over_id in
  let ro = Process.output_resistance b.process ~id in
  let co = Process.output_capacitance b.process ~gm ~gm_over_id in
  let pole_hz = Process.transit_frequency b.process ~gm_over_id in
  emit b (Vccs { ctrl; out; gm = signed_gm; pole_hz });
  emit b (Conductance (out, Gnd, 1.0 /. ro));
  emit b (Capacitance (out, Gnd, co));
  if b.process.Process.cross_cap_factor > 0.0 then
    emit b (Capacitance (ctrl, out, b.process.Process.cross_cap_factor *. co));
  b.rev_gms <- { gm_name = name; gm_value = gm; gm_over_id; bias_a = id } :: b.rev_gms

let emit_passive b kind (a, bnode) ~r ~c =
  match kind with
  | Subcircuit.Single_r -> emit b (Conductance (a, bnode, 1.0 /. r))
  | Subcircuit.Single_c -> emit b (Capacitance (a, bnode, c))
  | Subcircuit.Rc Subcircuit.Parallel ->
    emit b (Conductance (a, bnode, 1.0 /. r));
    emit b (Capacitance (a, bnode, c))
  | Subcircuit.Rc Subcircuit.Series -> emit b (Series_rc (a, bnode, r, c))

let emit_element b elem (a, bnode) ~r ~c =
  match elem with
  | Subcircuit.Res -> emit b (Conductance (a, bnode, 1.0 /. r))
  | Subcircuit.Cap -> emit b (Capacitance (a, bnode, c))

let sign_of = function Subcircuit.Plus -> 1.0 | Subcircuit.Minus -> -1.0

let slot_endpoints = function
  | Topology.Vin_v2 -> (Vin, v2)
  | Topology.Vin_vout -> (Vin, vout)
  | Topology.V1_vout -> (v1, vout)
  | Topology.V1_gnd -> (v1, Gnd)
  | Topology.V2_gnd -> (v2, Gnd)

let oriented dir (a, bnode) =
  match dir with
  | Subcircuit.Forward -> (a, bnode)
  | Subcircuit.Backward -> (bnode, a)

let kind_tag = function
  | `Gm -> "gm"
  | `Gm_over_id -> "gmid"
  | `R -> "r"
  | `C -> "c"

(* Pull the physical value of each parameter kind a subcircuit declares,
   keeping the declaration order of [Subcircuit.param_kinds]. *)
let slot_values sizing idxs kinds =
  let tbl = Hashtbl.create 4 in
  List.iter2 (fun k i -> Hashtbl.replace tbl (kind_tag k) sizing.(i)) kinds idxs;
  tbl

let value tbl tag =
  match Hashtbl.find_opt tbl tag with
  | Some v -> v
  | None -> invalid_arg ("Netlist: missing parameter " ^ tag)

let emit_slot b topo sizing schema slot =
  let sub = Topology.get topo slot in
  let idxs = Params.slot_param_indices schema slot in
  let kinds = Subcircuit.param_kinds sub in
  let tbl = slot_values sizing idxs kinds in
  let endpoints = slot_endpoints slot in
  let name = Topology.slot_name slot ^ ".gm" in
  match sub with
  | Subcircuit.No_conn -> ()
  | Subcircuit.Passive kind ->
    let r = if List.mem `R kinds then value tbl "r" else 0.0 in
    let c = if List.mem `C kinds then value tbl "c" else 0.0 in
    emit_passive b kind endpoints ~r ~c
  | Subcircuit.Gm (s, dir) ->
    let ctrl, out = oriented dir endpoints in
    let gm = value tbl "gm" and gmid = value tbl "gmid" in
    emit_gm b ~name ~ctrl ~out ~signed_gm:(sign_of s *. gm) ~gm ~gm_over_id:gmid
  | Subcircuit.Gm_with (s, dir, elem, combine) ->
    let ctrl, out = oriented dir endpoints in
    let gm = value tbl "gm" and gmid = value tbl "gmid" in
    let r = if List.mem `R kinds then value tbl "r" else 0.0 in
    let c = if List.mem `C kinds then value tbl "c" else 0.0 in
    (match combine with
    | Subcircuit.Parallel ->
      emit_gm b ~name ~ctrl ~out ~signed_gm:(sign_of s *. gm) ~gm ~gm_over_id:gmid;
      emit_element b elem endpoints ~r ~c
    | Subcircuit.Series ->
      (* The gm drives an internal node (carrying its parasitics); the
         series element connects that node to the slot output.  This is the
         pole/zero-forming structure discussed in Section IV-B. *)
      let m = fresh_node b in
      emit_gm b ~name ~ctrl ~out:m ~signed_gm:(sign_of s *. gm) ~gm ~gm_over_id:gmid;
      emit_element b elem (m, out) ~r ~c)

let stage_specs =
  [ (1, Subcircuit.Minus, Vin, v1); (2, Subcircuit.Plus, v1, v2); (3, Subcircuit.Minus, v2, vout) ]

let build ?(process = Process.behavioral) topo ~sizing ~cl_f =
  let schema = Params.schema topo in
  if Array.length sizing <> Params.dim schema then
    invalid_arg "Netlist.build: sizing vector dimension mismatch";
  let b = { process; rev_prims = []; next_node = 3; rev_gms = [] } in
  List.iter
    (fun (i, pol, ctrl, out) ->
      let gm = sizing.((i - 1) * 2) and gmid = sizing.(((i - 1) * 2) + 1) in
      emit_gm b
        ~name:(Printf.sprintf "stage%d" i)
        ~ctrl ~out ~signed_gm:(sign_of pol *. gm) ~gm ~gm_over_id:gmid)
    stage_specs;
  emit b (Capacitance (vout, Gnd, cl_f));
  List.iter (fun slot -> emit_slot b topo sizing schema slot) Topology.slots;
  let total_bias = List.fold_left (fun acc g -> acc +. g.bias_a) 0.0 b.rev_gms in
  {
    prims = List.rev b.rev_prims;
    n_unknowns = b.next_node;
    power_w = process.Process.vdd *. total_bias *. process.Process.power_overhead;
    gms = List.rev b.rev_gms;
  }
