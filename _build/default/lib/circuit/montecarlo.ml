type t = {
  trials : int;
  passes : int;
  yield : float;
  worst_pm_deg : float;
  fom_mean : float;
}

let run ?(trials = 100) ?(sigma = 0.05) ~rng ~spec topo ~sizing =
  if trials <= 0 then invalid_arg "Montecarlo.run: non-positive trials";
  let passes = ref 0 in
  let worst_pm = ref infinity in
  let fom_sum = ref 0.0 in
  for _ = 1 to trials do
    let perturbed =
      Array.map (fun v -> v *. exp (sigma *. Into_util.Rng.gaussian rng)) sizing
    in
    match Perf.evaluate topo ~sizing:perturbed ~cl_f:spec.Spec.cl_f with
    | None -> worst_pm := Float.min !worst_pm (-180.0)
    | Some p ->
      worst_pm := Float.min !worst_pm p.Perf.pm_deg;
      if Perf.satisfies p spec then begin
        incr passes;
        fom_sum := !fom_sum +. Perf.fom p ~cl_f:spec.Spec.cl_f
      end
  done;
  {
    trials;
    passes = !passes;
    yield = float_of_int !passes /. float_of_int trials;
    worst_pm_deg = (if Float.is_finite !worst_pm then !worst_pm else 0.0);
    fom_mean = (if !passes = 0 then 0.0 else !fom_sum /. float_of_int !passes);
  }
