type kind = [ `Gm | `Gm_over_id | `R | `C ]

type param = {
  name : string;
  kind : kind;
  lo : float;
  hi : float;
  log_scale : bool;
}

type schema = {
  topo : Topology.t;
  plist : param list;
  slot_indices : (Topology.slot * int list) list;
}

let param_of_kind name = function
  | `Gm -> { name; kind = `Gm; lo = Process.gm_lo; hi = Process.gm_hi; log_scale = true }
  | `Gm_over_id ->
    { name; kind = `Gm_over_id; lo = Process.gmid_lo; hi = Process.gmid_hi; log_scale = false }
  | `R -> { name; kind = `R; lo = Process.r_lo; hi = Process.r_hi; log_scale = true }
  | `C -> { name; kind = `C; lo = Process.c_lo; hi = Process.c_hi; log_scale = true }

let kind_suffix = function
  | `Gm -> "gm"
  | `Gm_over_id -> "gmid"
  | `R -> "R"
  | `C -> "C"

let schema topo =
  let stage_params =
    List.concat_map
      (fun i ->
        [
          param_of_kind (Printf.sprintf "gm%d" i) `Gm;
          param_of_kind (Printf.sprintf "gmid%d" i) `Gm_over_id;
        ])
      [ 1; 2; 3 ]
  in
  let next = ref (List.length stage_params) in
  let slot_entries =
    List.map
      (fun slot ->
        let kinds = Subcircuit.param_kinds (Topology.get topo slot) in
        let ps =
          List.map
            (fun k ->
              param_of_kind
                (Printf.sprintf "%s.%s" (Topology.slot_name slot) (kind_suffix k))
                k)
            kinds
        in
        let idxs = List.mapi (fun i _ -> !next + i) ps in
        next := !next + List.length ps;
        (slot, ps, idxs))
      Topology.slots
  in
  {
    topo;
    plist = stage_params @ List.concat_map (fun (_, ps, _) -> ps) slot_entries;
    slot_indices = List.map (fun (s, _, idxs) -> (s, idxs)) slot_entries;
  }

let dim s = List.length s.plist
let params s = s.plist
let topology s = s.topo

let clamp lo hi x = Float.max lo (Float.min hi x)

let denorm_one p u =
  let u = clamp 0.0 1.0 u in
  if p.log_scale then exp (log p.lo +. (u *. (log p.hi -. log p.lo)))
  else p.lo +. (u *. (p.hi -. p.lo))

let norm_one p x =
  let x = clamp p.lo p.hi x in
  if p.log_scale then (log x -. log p.lo) /. (log p.hi -. log p.lo)
  else (x -. p.lo) /. (p.hi -. p.lo)

let check_dim s v name =
  if Array.length v <> dim s then invalid_arg ("Params." ^ name ^ ": dimension mismatch")

let denormalize s u =
  check_dim s u "denormalize";
  let ps = Array.of_list s.plist in
  Array.mapi (fun i x -> denorm_one ps.(i) x) u

let normalize s x =
  check_dim s x "normalize";
  let ps = Array.of_list s.plist in
  Array.mapi (fun i v -> norm_one ps.(i) v) x

let random_point rng s = Array.init (dim s) (fun _ -> Into_util.Rng.float rng)
let default_point s = Array.make (dim s) 0.5

let slot_param_indices s slot =
  match List.assoc_opt slot s.slot_indices with Some l -> l | None -> []
