module Mat = Into_linalg.Mat

type t = {
  g : Mat.t;
  c : Mat.t;
  b_g : float array;
  b_c : float array;
  n : int;
  output : int;
}

type target = To_ground | To_vin | To_node of int

let classify = function
  | Netlist.Gnd -> To_ground
  | Netlist.Vin -> To_vin
  | Netlist.N i -> To_node i

(* Count extra unknowns: one internal node per series R-C branch, one
   low-pass state per finite-pole transconductor. *)
let count_extra prims =
  List.fold_left
    (fun acc prim ->
      match prim with
      | Netlist.Series_rc _ -> acc + 1
      | Netlist.Vccs { pole_hz; _ } when Float.is_finite pole_hz -> acc + 1
      | Netlist.Vccs _ | Netlist.Conductance _ | Netlist.Capacitance _ -> acc)
    0 prims

type builder = {
  g_m : Mat.t;
  c_m : Mat.t;
  bg : float array;
  bc : float array;
  mutable next : int;
}

(* Stamp a two-terminal of value [v] into matrix [m] (with its input-vector
   counterpart [bv] when one side is the driven source). *)
let stamp_two m bv a b v =
  (match classify a with
  | To_node i -> (
    Mat.set m i i (Mat.get m i i +. v);
    match classify b with
    | To_node j -> Mat.set m i j (Mat.get m i j -. v)
    | To_vin -> bv.(i) <- bv.(i) +. v
    | To_ground -> ())
  | To_vin | To_ground -> ());
  match classify b with
  | To_node j -> (
    Mat.set m j j (Mat.get m j j +. v);
    match classify a with
    | To_node i -> Mat.set m j i (Mat.get m j i -. v)
    | To_vin -> bv.(j) <- bv.(j) +. v
    | To_ground -> ())
  | To_vin | To_ground -> ()

(* Ideal VCCS of transconductance [gm] controlled by [ctrl] injecting into
   [out]: KCL row of [out] gains [-gm * v_ctrl]. *)
let stamp_vccs bld ~ctrl ~out gm =
  match classify out with
  | To_node o -> (
    match classify ctrl with
    | To_node c -> Mat.set bld.g_m o c (Mat.get bld.g_m o c -. gm)
    | To_vin -> bld.bg.(o) <- bld.bg.(o) +. gm
    | To_ground -> ())
  | To_vin | To_ground -> ()

let stamp prim bld =
  match prim with
  | Netlist.Conductance (a, b, g) -> stamp_two bld.g_m bld.bg a b g
  | Netlist.Capacitance (a, b, c) -> stamp_two bld.c_m bld.bc a b c
  | Netlist.Series_rc (a, b, r, c) ->
    (* Explicit internal node between the resistor (on the [a] side) and
       the capacitor (on the [b] side). *)
    let m = bld.next in
    bld.next <- bld.next + 1;
    stamp_two bld.g_m bld.bg a (Netlist.N m) (1.0 /. r);
    stamp_two bld.c_m bld.bc (Netlist.N m) b c
  | Netlist.Vccs { ctrl; out; gm; pole_hz } ->
    if Float.is_finite pole_hz then begin
      (* Low-pass state x with x + (s/w) x = v_ctrl; the VCCS reads x. *)
      let x = bld.next in
      bld.next <- bld.next + 1;
      Mat.set bld.g_m x x 1.0;
      (match classify ctrl with
      | To_node c -> Mat.set bld.g_m x c (-1.0)
      | To_vin -> bld.bg.(x) <- bld.bg.(x) +. 1.0
      | To_ground -> ());
      Mat.set bld.c_m x x (1.0 /. (2.0 *. Float.pi *. pole_hz));
      stamp_vccs bld ~ctrl:(Netlist.N x) ~out gm
    end
    else stamp_vccs bld ~ctrl ~out gm

let build netlist =
  let n = netlist.Netlist.n_unknowns + count_extra netlist.Netlist.prims in
  let bld =
    {
      g_m = Mat.create n n;
      c_m = Mat.create n n;
      bg = Array.make n 0.0;
      bc = Array.make n 0.0;
      next = netlist.Netlist.n_unknowns;
    }
  in
  List.iter (fun prim -> stamp prim bld) netlist.Netlist.prims;
  assert (bld.next = n);
  { g = bld.g_m; c = bld.c_m; b_g = bld.bg; b_c = bld.bc; n; output = 2 }

let transfer t ~freq_hz =
  let w = 2.0 *. Float.pi *. freq_hz in
  let y = Into_linalg.Cmat.create t.n t.n in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      Into_linalg.Cmat.set y i j { Complex.re = Mat.get t.g i j; im = w *. Mat.get t.c i j }
    done
  done;
  let rhs =
    Array.init t.n (fun i -> { Complex.re = t.b_g.(i); im = w *. t.b_c.(i) })
  in
  (Into_linalg.Cmat.solve y rhs).(t.output)
