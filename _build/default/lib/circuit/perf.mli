(** Circuit performance records, the figure of merit and spec checking.

    FoM = GBW [MHz] * CL [pF] / Power [mW]  (Eq. 6). *)

type t = {
  gain_db : float;
  gbw_hz : float;
  pm_deg : float;
  power_w : float;
}

val fom : t -> cl_f:float -> float

val satisfies : t -> Spec.t -> bool
(** All four Table-I constraints hold. *)

val violation : t -> Spec.t -> float
(** Sum of normalized constraint violations; 0 iff {!satisfies}. *)

val metrics : (string * (t -> float) * (Spec.t -> float * [ `Min | `Max ])) list
(** The four constrained metrics as (name, extractor, spec-bound) triples, in
    a canonical order (Gain dB, GBW Hz, PM deg, Power W).  Used to build one
    surrogate model per metric. *)

val stability_checked_pm : Netlist.t -> float -> float
(** Guard a Bode-derived phase margin with the exact pencil eigenvalues:
    circuits that are open-loop unstable (internal compensation loops can
    oscillate, making the AC sweep meaningless) or unity-feedback unstable
    are forced to a margin of at most -90 degrees. *)

val evaluate :
  ?process:Process.t -> Topology.t -> sizing:float array -> cl_f:float -> t option
(** Full evaluation: expand the netlist, run the AC analysis with the
    eigenvalue stability guard, attach static power.  [None] when the
    simulation fails (singular system). *)

val to_string : t -> cl_f:float -> string
