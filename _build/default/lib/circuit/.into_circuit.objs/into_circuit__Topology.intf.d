lib/circuit/topology.mli: Into_util Subcircuit
