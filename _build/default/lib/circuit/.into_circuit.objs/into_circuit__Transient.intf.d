lib/circuit/transient.mli: Netlist
