lib/circuit/montecarlo.mli: Into_util Spec Topology
