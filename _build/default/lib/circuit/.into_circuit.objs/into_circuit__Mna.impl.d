lib/circuit/mna.ml: Array Complex Float Into_linalg List Netlist
