lib/circuit/topology.ml: Array Into_util List Printf Stdlib String Subcircuit
