lib/circuit/spec.mli:
