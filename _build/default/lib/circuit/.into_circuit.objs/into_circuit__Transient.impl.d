lib/circuit/transient.ml: Ac Array Float Into_linalg Linear_system
