lib/circuit/noise.mli: Netlist
