lib/circuit/params.ml: Array Float Into_util List Printf Process Subcircuit Topology
