lib/circuit/mna.mli: Complex Netlist
