lib/circuit/perf.mli: Netlist Process Spec Topology
