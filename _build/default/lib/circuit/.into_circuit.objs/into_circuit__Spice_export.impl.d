lib/circuit/spice_export.ml: Ac Buffer List Netlist Printf Topology
