lib/circuit/process.ml: Float
