lib/circuit/params.mli: Into_util Topology
