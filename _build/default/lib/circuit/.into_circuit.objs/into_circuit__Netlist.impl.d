lib/circuit/netlist.ml: Array Hashtbl List Params Printf Process Subcircuit Topology
