lib/circuit/subcircuit.mli:
