lib/circuit/linear_system.mli: Complex Into_linalg Netlist
