lib/circuit/poles_zeros.ml: Array Complex Float Into_linalg Linear_system List Printf String
