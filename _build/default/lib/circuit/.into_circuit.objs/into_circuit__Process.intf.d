lib/circuit/process.mli:
