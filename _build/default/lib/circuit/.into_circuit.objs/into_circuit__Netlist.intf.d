lib/circuit/netlist.mli: Process Topology
