lib/circuit/noise.ml: Array Complex Float List Mna Netlist
