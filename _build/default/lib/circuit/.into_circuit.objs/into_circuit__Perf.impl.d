lib/circuit/perf.ml: Ac Complex Float Into_linalg List Netlist Poles_zeros Printf Spec
