lib/circuit/ac.ml: Array Complex Float Mna
