lib/circuit/montecarlo.ml: Array Float Into_util Perf Spec
