lib/circuit/poles_zeros.mli: Complex Netlist
