lib/circuit/spice_export.mli: Topology
