lib/circuit/ac.mli: Netlist
