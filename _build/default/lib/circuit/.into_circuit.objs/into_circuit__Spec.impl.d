lib/circuit/spec.ml: List Printf String
