lib/circuit/linear_system.ml: Array Complex Float Into_linalg List Netlist
