lib/circuit/subcircuit.ml: List Stdlib
