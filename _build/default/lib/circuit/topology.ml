type slot = Vin_v2 | Vin_vout | V1_vout | V1_gnd | V2_gnd

let slots = [ Vin_v2; Vin_vout; V1_vout; V1_gnd; V2_gnd ]

let slot_name = function
  | Vin_v2 -> "vin-v2"
  | Vin_vout -> "vin-vout"
  | V1_vout -> "v1-vout"
  | V1_gnd -> "v1-gnd"
  | V2_gnd -> "v2-gnd"

let input_types = Array.of_list Subcircuit.gm_from_input
let full_types = Array.of_list Subcircuit.all
let shunt_types = Array.of_list Subcircuit.passive_only

let allowed = function
  | Vin_v2 | Vin_vout -> input_types
  | V1_vout -> full_types
  | V1_gnd | V2_gnd -> shunt_types

type t = {
  vin_v2 : Subcircuit.t;
  vin_vout : Subcircuit.t;
  v1_vout : Subcircuit.t;
  v1_gnd : Subcircuit.t;
  v2_gnd : Subcircuit.t;
}

let check slot sub =
  let ok = Array.exists (Subcircuit.equal sub) (allowed slot) in
  if not ok then
    invalid_arg
      (Printf.sprintf "Topology: subcircuit %s not allowed in slot %s"
         (Subcircuit.to_string sub) (slot_name slot))

let make ~vin_v2 ~vin_vout ~v1_vout ~v1_gnd ~v2_gnd =
  check Vin_v2 vin_v2;
  check Vin_vout vin_vout;
  check V1_vout v1_vout;
  check V1_gnd v1_gnd;
  check V2_gnd v2_gnd;
  { vin_v2; vin_vout; v1_vout; v1_gnd; v2_gnd }

let get t = function
  | Vin_v2 -> t.vin_v2
  | Vin_vout -> t.vin_vout
  | V1_vout -> t.v1_vout
  | V1_gnd -> t.v1_gnd
  | V2_gnd -> t.v2_gnd

let set t slot sub =
  check slot sub;
  match slot with
  | Vin_v2 -> { t with vin_v2 = sub }
  | Vin_vout -> { t with vin_vout = sub }
  | V1_vout -> { t with v1_vout = sub }
  | V1_gnd -> { t with v1_gnd = sub }
  | V2_gnd -> { t with v2_gnd = sub }

let equal a b = a = b
let compare = Stdlib.compare

let space_size =
  List.fold_left (fun acc s -> acc * Array.length (allowed s)) 1 slots

let index_in_slot slot sub =
  let types = allowed slot in
  let rec find i =
    if i >= Array.length types then
      invalid_arg "Topology.index_in_slot: type not in slot"
    else if Subcircuit.equal types.(i) sub then i
    else find (i + 1)
  in
  find 0

let to_index t =
  List.fold_left
    (fun acc slot -> (acc * Array.length (allowed slot)) + index_in_slot slot (get t slot))
    0 slots

let of_index idx =
  if idx < 0 || idx >= space_size then invalid_arg "Topology.of_index: out of range";
  (* Decode the mixed-radix digits from least-significant slot backwards. *)
  let rev_slots = List.rev slots in
  let rem = ref idx in
  let digits =
    List.map
      (fun slot ->
        let base = Array.length (allowed slot) in
        let d = !rem mod base in
        rem := !rem / base;
        (slot, (allowed slot).(d)))
      rev_slots
  in
  let find slot = List.assoc slot digits in
  {
    vin_v2 = find Vin_v2;
    vin_vout = find Vin_vout;
    v1_vout = find V1_vout;
    v1_gnd = find V1_gnd;
    v2_gnd = find V2_gnd;
  }

let random rng = of_index (Into_util.Rng.int rng space_size)

let mutate_slot rng t slot =
  let current = get t slot in
  let types = allowed slot in
  let rec draw () =
    let s = Into_util.Rng.choice rng types in
    if Subcircuit.equal s current then draw () else s
  in
  set t slot (draw ())

let mutate rng t =
  let mutated = ref false in
  let t' =
    List.fold_left
      (fun acc slot ->
        if Into_util.Rng.float rng < 0.2 then begin
          mutated := true;
          mutate_slot rng acc slot
        end
        else acc)
      t slots
  in
  if !mutated then t'
  else mutate_slot rng t (Into_util.Rng.choice rng (Array.of_list slots))

let hamming a b =
  List.fold_left
    (fun acc slot -> if Subcircuit.equal (get a slot) (get b slot) then acc else acc + 1)
    0 slots

let to_string t =
  let cell slot =
    Printf.sprintf "%s:%s" (slot_name slot) (Subcircuit.to_string (get t slot))
  in
  "[" ^ String.concat " " (List.map cell slots) ^ "]"

let nmc () =
  make ~vin_v2:Subcircuit.No_conn ~vin_vout:Subcircuit.No_conn
    ~v1_vout:(Subcircuit.Passive (Subcircuit.Rc Subcircuit.Series))
    ~v1_gnd:Subcircuit.No_conn ~v2_gnd:Subcircuit.No_conn
