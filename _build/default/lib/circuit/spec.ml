type t = {
  name : string;
  min_gain_db : float;
  min_gbw_hz : float;
  min_pm_deg : float;
  max_power_w : float;
  cl_f : float;
}

let base =
  {
    name = "S-1";
    min_gain_db = 85.0;
    min_gbw_hz = 0.5e6;
    min_pm_deg = 55.0;
    max_power_w = 750e-6;
    cl_f = 10e-12;
  }

let s1 = base
let s2 = { base with name = "S-2"; min_gain_db = 110.0 }
let s3 = { base with name = "S-3"; min_gbw_hz = 5e6 }
let s4 = { base with name = "S-4"; max_power_w = 150e-6 }
let s5 = { base with name = "S-5"; cl_f = 10000e-12 }

let all = [ s1; s2; s3; s4; s5 ]

let find name = List.find (fun s -> String.equal s.name name) all

let to_string s =
  Printf.sprintf "%s: Gain>%.0fdB GBW>%.1fMHz PM>%.0fdeg Power<%.0fuW CL=%.0fpF"
    s.name s.min_gain_db (s.min_gbw_hz /. 1e6) s.min_pm_deg (s.max_power_w *. 1e6)
    (s.cl_f *. 1e12)
