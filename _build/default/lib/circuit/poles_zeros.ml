module Mat = Into_linalg.Mat
module Lu = Into_linalg.Lu
module Eig = Into_linalg.Eig

type t = { poles_hz : Complex.t list; zeros_hz : Complex.t list }

let two_pi = 2.0 *. Float.pi

(* Frequencies (rad/s magnitude) beyond this are artifacts of the inverted
   pencil (poles/zeros "at infinity") and are dropped. *)
let cutoff_rad = 1e15

(* Generalized eigenvalues s of det(G + sC) = 0 by shift-and-invert:
   with M = (G + sigma C)^-1 C, eigenvalues mu of M map to
   s = sigma - 1/mu; mu ~ 0 maps to infinity. *)
let pencil_roots g c =
  let n = Mat.rows g in
  if n = 0 then []
  else begin
    let try_sigma sigma =
      let shifted = Mat.add g (Mat.scale sigma c) in
      match Lu.decompose shifted with
      | lu ->
        (* Columns of M = shifted^-1 C. *)
        let m = Mat.create n n in
        for j = 0 to n - 1 do
          let col = Array.init n (fun i -> Mat.get c i j) in
          let x = Lu.solve lu col in
          for i = 0 to n - 1 do
            Mat.set m i j x.(i)
          done
        done;
        Some m
      | exception Lu.Singular -> None
    in
    let rec first_regular = function
      | [] -> None
      | sigma :: rest -> (
        match try_sigma sigma with Some m -> Some (sigma, m) | None -> first_regular rest)
    in
    match first_regular [ 0.0; 1.0; 2.0 *. Float.pi *. 1e3; -7.3e4 ] with
    | None -> []
    | Some (sigma, m) ->
      Array.to_list (Eig.eigenvalues_real m)
      |> List.filter_map (fun mu ->
             if Complex.norm mu < 1e-300 then None
             else
               let s =
                 Complex.sub { Complex.re = sigma; im = 0.0 } (Complex.div Complex.one mu)
               in
               if Complex.norm s > cutoff_rad then None else Some s)
  end

let sort_by_magnitude =
  List.sort (fun a b -> compare (Complex.norm a) (Complex.norm b))

let to_hz s = Complex.div s { Complex.re = two_pi; im = 0.0 }

let analyze netlist =
  let sys = Linear_system.build netlist in
  let n = sys.Linear_system.n in
  let poles = pencil_roots sys.Linear_system.g sys.Linear_system.c in
  (* Transmission zeros: adjoin the input column b(s) = b_g + s b_c and the
     output row e_out to the pencil. *)
  let gaug = Mat.create (n + 1) (n + 1) in
  let caug = Mat.create (n + 1) (n + 1) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set gaug i j (Mat.get sys.Linear_system.g i j);
      Mat.set caug i j (Mat.get sys.Linear_system.c i j)
    done;
    Mat.set gaug i n sys.Linear_system.b_g.(i);
    Mat.set caug i n sys.Linear_system.b_c.(i)
  done;
  Mat.set gaug n sys.Linear_system.output 1.0;
  let zeros = pencil_roots gaug caug in
  {
    poles_hz = sort_by_magnitude (List.map to_hz poles);
    zeros_hz = sort_by_magnitude (List.map to_hz zeros);
  }

let open_loop_poles netlist =
  let sys = Linear_system.build netlist in
  sort_by_magnitude (List.map to_hz (pencil_roots sys.Linear_system.g sys.Linear_system.c))

let closed_loop_poles netlist =
  let sys = Linear_system.build netlist in
  let n = sys.Linear_system.n in
  let out = sys.Linear_system.output in
  (* u = vin - vout: move the b * vout term to the left-hand side. *)
  let g = Mat.copy sys.Linear_system.g and c = Mat.copy sys.Linear_system.c in
  for i = 0 to n - 1 do
    Mat.set g i out (Mat.get g i out +. sys.Linear_system.b_g.(i));
    Mat.set c i out (Mat.get c i out +. sys.Linear_system.b_c.(i))
  done;
  sort_by_magnitude (List.map to_hz (pencil_roots g c))

let is_stable t = List.for_all (fun p -> p.Complex.re < 0.0) t.poles_hz

let dominant_pole_hz t =
  match t.poles_hz with [] -> None | p :: _ -> Some (Complex.norm p)

let describe t =
  let fmt kind zs =
    match zs with
    | [] -> Printf.sprintf "  no finite %s" kind
    | _ ->
      String.concat "\n"
        (List.map
           (fun z ->
             Printf.sprintf "  %-5s %12.4g %+12.4g j Hz  (|.| = %.4g Hz)" kind
               z.Complex.re z.Complex.im (Complex.norm z))
           zs)
  in
  Printf.sprintf "poles:\n%s\nzeros:\n%s" (fmt "pole" t.poles_hz) (fmt "zero" t.zeros_hz)
