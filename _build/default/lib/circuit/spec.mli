(** Design specification sets (Table I of the paper). *)

type t = {
  name : string;
  min_gain_db : float;
  min_gbw_hz : float;
  min_pm_deg : float;
  max_power_w : float;
  cl_f : float;  (** load capacitance, F *)
}

val s1 : t
(** Gain>85dB, GBW>0.5MHz, PM>55deg, Power<750uW, CL=10pF. *)

val s2 : t
(** High gain: Gain>110dB. *)

val s3 : t
(** High bandwidth: GBW>5MHz. *)

val s4 : t
(** Low power: Power<150uW. *)

val s5 : t
(** Large load: CL=10000pF. *)

val all : t list
(** [s1; s2; s3; s4; s5]. *)

val find : string -> t
(** Look up by name (["S-1"] .. ["S-5"]). @raise Not_found otherwise. *)

val to_string : t -> string
