(** Monte-Carlo robustness analysis of a sized design.

    Process variation and mismatch scatter every component value; a design
    with all margins at the specification boundary yields poorly in
    fabrication.  Each trial perturbs every physical parameter with
    log-normal noise (value * exp(sigma * N(0,1)), the natural model for
    gm/R/C spreads), re-simulates, and checks the specification.  The
    reliability argument behind the paper's refinement story — trusted
    designs should stay trustworthy — becomes measurable: yield before and
    after a topology edit. *)

type t = {
  trials : int;
  passes : int;
  yield : float;  (** passes / trials *)
  worst_pm_deg : float;  (** most pessimistic phase margin seen *)
  fom_mean : float;  (** mean FoM over passing trials (0 if none) *)
}

val run :
  ?trials:int ->
  ?sigma:float ->
  rng:Into_util.Rng.t ->
  spec:Spec.t ->
  Topology.t ->
  sizing:float array ->
  t
(** [trials] defaults to 100, [sigma] to 0.05 (5% component spread).
    Simulation failures count as failing trials. *)
