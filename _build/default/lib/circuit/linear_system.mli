(** Linearization of a netlist into the descriptor form [ (G + sC) x = b u ].

    The AC engine ({!Mna}) stamps frequency-dependent admittances directly,
    which is fast but hides the system's polynomial structure.  This module
    expands every rational element into constant real matrices by adding
    internal states:

    - a series R-C branch becomes an explicit internal node between its
      resistor and capacitor;
    - a transconductor's single-pole roll-off [gm/(1 + s/w)] becomes an
      auxiliary low-pass state [x + (s/w) x = v_ctrl] whose output drives
      the ideal VCCS.

    The resulting pencil [(G, C)] powers exact pole/zero extraction
    ({!Poles_zeros}), time-domain integration ({!Transient}) and noise
    analysis ({!Noise}); its transfer function agrees with {!Mna} at every
    frequency, which the test suite checks. *)

type t = {
  g : Into_linalg.Mat.t;  (** conductance matrix *)
  c : Into_linalg.Mat.t;  (** capacitance matrix *)
  b_g : Into_linalg.Vec.t;  (** resistive input coupling: multiplies [v_in] *)
  b_c : Into_linalg.Vec.t;  (** capacitive input coupling: multiplies [s v_in] *)
  n : int;  (** number of unknowns (3 circuit + internal + auxiliary) *)
  output : int;  (** index of [vout] *)
}

val build : Netlist.t -> t

val transfer : t -> freq_hz:float -> Complex.t
(** [vout/vin] from the descriptor form; matches {!Mna.transfer}. *)
