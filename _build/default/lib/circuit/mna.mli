(** Modified nodal analysis of a netlist at a single frequency.

    The input source [vin] is an ideal unit AC source, so elements touching
    it contribute to the right-hand side; ground contributions vanish.  The
    assembled system [Y(jw) v = i] is solved with a dense complex LU. *)

exception Singular
(** Raised when the admittance matrix is numerically singular at the
    requested frequency (degenerate topology/sizing). *)

val solve : Netlist.t -> freq_hz:float -> Complex.t array
(** Node voltages of all unknowns (index 0 = v1, 1 = v2, 2 = vout, 3+ =
    internal) for a unit input. *)

val transfer : Netlist.t -> freq_hz:float -> Complex.t
(** [vout / vin] at the given frequency. *)

val element_admittance : Netlist.prim -> freq_hz:float -> Complex.t
(** Admittance of a passive two-terminal at a frequency (used by the
    Nyquist-theorem noise model).
    @raise Invalid_argument on a controlled source. *)

val solve_with_injection :
  Netlist.t -> freq_hz:float -> into:Netlist.node -> out_of:Netlist.node -> Complex.t array
(** Node voltages with the input source silenced and a unit AC current
    pushed into [into] and pulled from [out_of] — the per-source transfer
    the noise analysis superposes. *)
