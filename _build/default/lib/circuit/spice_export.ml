let node_name = function
  | Netlist.Gnd -> "0"
  | Netlist.Vin -> "vin"
  | Netlist.N 0 -> "v1"
  | Netlist.N 1 -> "v2"
  | Netlist.N 2 -> "vout"
  | Netlist.N i -> Printf.sprintf "n%d" i

let behavioral ?(title = "INTO-OA behavioral op-amp") topo ~sizing ~cl_f =
  let netlist = Netlist.build topo ~sizing ~cl_f in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "* %s" title;
  line "* topology: %s" (Topology.to_string topo);
  line "* power (static, behavioral): %.4g W" netlist.Netlist.power_w;
  line "vin vin 0 dc 0 ac 1";
  let r_id = ref 0 and c_id = ref 0 and g_id = ref 0 and rc_id = ref 0 in
  List.iter
    (fun prim ->
      match prim with
      | Netlist.Conductance (a, b, g) ->
        incr r_id;
        line "r%d %s %s %.6g" !r_id (node_name a) (node_name b) (1.0 /. g)
      | Netlist.Capacitance (a, b, c) ->
        incr c_id;
        line "c%d %s %s %.6g" !c_id (node_name a) (node_name b) c
      | Netlist.Series_rc (a, b, r, c) ->
        incr rc_id;
        (* Expand to an explicit internal node. *)
        let mid = Printf.sprintf "rcm%d" !rc_id in
        line "r_s%d %s %s %.6g" !rc_id (node_name a) mid r;
        line "c_s%d %s %s %.6g" !rc_id mid (node_name b) c
      | Netlist.Vccs { ctrl; out; gm; pole_hz } ->
        incr g_id;
        line "* transconductor %d: single-pole roll-off at %.4g Hz" !g_id pole_hz;
        line "g%d %s 0 %s 0 %.6g" !g_id (node_name out) (node_name ctrl) gm)
    netlist.Netlist.prims;
  line ".ac dec %d %g %g" 16 Ac.f_min Ac.f_max;
  line ".print ac vdb(vout) vp(vout)";
  line ".end";
  Buffer.contents buf
