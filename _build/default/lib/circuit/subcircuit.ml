type element = Res | Cap
type combine = Series | Parallel
type polarity = Plus | Minus
type direction = Forward | Backward

type passive_kind =
  | Single_r
  | Single_c
  | Rc of combine

type t =
  | No_conn
  | Passive of passive_kind
  | Gm of polarity * direction
  | Gm_with of polarity * direction * element * combine

let passive_kinds = [ Single_r; Single_c; Rc Parallel; Rc Series ]
let polarities = [ Plus; Minus ]
let directions = [ Forward; Backward ]
let elements = [ Res; Cap ]
let combines = [ Series; Parallel ]

let all =
  No_conn
  :: List.map (fun p -> Passive p) passive_kinds
  @ List.concat_map
      (fun s -> List.map (fun d -> Gm (s, d)) directions)
      polarities
  @ List.concat_map
      (fun s ->
        List.concat_map
          (fun d ->
            List.concat_map
              (fun e -> List.map (fun c -> Gm_with (s, d, e, c)) combines)
              elements)
          directions)
      polarities

let passive_only = No_conn :: List.map (fun p -> Passive p) passive_kinds

let gm_from_input =
  No_conn
  :: List.concat_map
       (fun s ->
         Gm (s, Forward)
         :: List.map (fun e -> Gm_with (s, Forward, e, Series)) elements)
       polarities

let equal a b = a = b
let compare = Stdlib.compare

let polarity_string = function Plus -> "+" | Minus -> "-"
let element_string = function Res -> "R" | Cap -> "C"
let combine_string = function Series -> "s" | Parallel -> "p"
let direction_string = function Forward -> "->" | Backward -> "<-"

let to_string = function
  | No_conn -> "none"
  | Passive Single_r -> "R"
  | Passive Single_c -> "C"
  | Passive (Rc Parallel) -> "RCp"
  | Passive (Rc Series) -> "RCs"
  | Gm (s, d) -> polarity_string s ^ "gm" ^ direction_string d
  | Gm_with (s, d, e, c) ->
    polarity_string s ^ "gm" ^ element_string e ^ combine_string c
    ^ direction_string d

(* The circuit graph is undirected (Section III-A), so the orientation of a
   floating transconductor must be part of its node label — two circuits
   differing only in gm direction are different designs and must not
   collapse to the same WL features. *)
let label = to_string

let is_gm = function
  | No_conn | Passive _ -> false
  | Gm _ | Gm_with _ -> true

let param_kinds = function
  | No_conn -> []
  | Passive Single_r -> [ `R ]
  | Passive Single_c -> [ `C ]
  | Passive (Rc _) -> [ `R; `C ]
  | Gm _ -> [ `Gm; `Gm_over_id ]
  | Gm_with (_, _, Res, _) -> [ `Gm; `Gm_over_id; `R ]
  | Gm_with (_, _, Cap, _) -> [ `Gm; `Gm_over_id; `C ]
