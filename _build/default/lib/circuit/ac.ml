type t = { gain_db : float; gbw_hz : float; pm_deg : float }

let f_min = 1e-2
let f_max = 1e13
let points_per_decade = 16

let two_pi = 2.0 *. Float.pi

(* Unwrap [raw] (in radians) to the 2*pi-translate closest to [prev]. *)
let unwrap ~prev raw =
  let k = Float.round ((prev -. raw) /. two_pi) in
  raw +. (k *. two_pi)

let db_of_mag m = 20.0 *. log10 (Float.max m 1e-300)

(* Starting phase of the unwrap.  atan2 reports a negative-real DC response
   as +pi, but an inverted amplifier in unity negative feedback is positive
   feedback: its inversion must count as 180 degrees of lag (-pi), not
   lead, or the analysis would credit it with a full extra turn of phase
   margin. *)
let initial_phase raw = if raw > 0.75 *. Float.pi then raw -. two_pi else raw

let sweep_freqs () =
  let decades = log10 (f_max /. f_min) in
  let n = int_of_float (Float.round (decades *. float_of_int points_per_decade)) + 1 in
  Array.init n (fun i ->
      f_min *. (10.0 ** (float_of_int i /. float_of_int points_per_decade)))

let bode netlist ~freqs =
  let prev_phase = ref 0.0 in
  let first = ref true in
  Array.map
    (fun f ->
      let h = Mna.transfer netlist ~freq_hz:f in
      let raw = Complex.arg h in
      let ph = if !first then initial_phase raw else unwrap ~prev:!prev_phase raw in
      first := false;
      prev_phase := ph;
      (f, db_of_mag (Complex.norm h), ph *. 180.0 /. Float.pi))
    freqs

(* Refine the |A| = 1 crossing inside (f_lo, f_hi) by bisection on the log
   axis, keeping the unwrapped phase coherent with the lower bracket. *)
let bisect_crossing netlist ~f_lo ~ph_lo ~f_hi =
  let rec go f_lo ph_lo f_hi iters =
    if iters = 0 then (sqrt (f_lo *. f_hi), ph_lo)
    else
      let fm = sqrt (f_lo *. f_hi) in
      let h = Mna.transfer netlist ~freq_hz:fm in
      let ph = unwrap ~prev:ph_lo (Complex.arg h) in
      if Complex.norm h >= 1.0 then go fm ph f_hi (iters - 1)
      else go f_lo ph_lo fm (iters - 1)
  in
  go f_lo ph_lo f_hi 40

let analyze netlist =
  match
    let freqs = sweep_freqs () in
    let n = Array.length freqs in
    let mags = Array.make n 0.0 in
    let phases = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let h = Mna.transfer netlist ~freq_hz:freqs.(i) in
      mags.(i) <- Complex.norm h;
      let raw = Complex.arg h in
      phases.(i) <- (if i = 0 then initial_phase raw else unwrap ~prev:phases.(i - 1) raw)
    done;
    let gain_db = db_of_mag mags.(0) in
    (* Last downward unity crossing: the frequency after which |A| stays
       below 1; this is what feedback stability cares about. *)
    let crossing = ref None in
    for i = 0 to n - 2 do
      if mags.(i) >= 1.0 && mags.(i + 1) < 1.0 then crossing := Some i
    done;
    (match !crossing with
    | None -> { gain_db; gbw_hz = 0.0; pm_deg = 0.0 }
    | Some i ->
      let fu, ph_at_crossing =
        bisect_crossing netlist ~f_lo:freqs.(i) ~ph_lo:phases.(i) ~f_hi:freqs.(i + 1)
      in
      (* Nyquist-aware margin: the critical point sits at +/-180 degrees
         (mod 360), so the margin is the smallest distance of the unwrapped
         phase to either line over the whole band where |A| >= 1 — not just
         the lag at the crossing.  This correctly rejects sign-flipping
         feedforward responses whose phase climbs toward +180 with gain
         above unity, and conditionally stable resonances alike. *)
      let worst_abs = ref (Float.abs ph_at_crossing) in
      for k = 0 to i do
        if mags.(k) >= 1.0 then worst_abs := Float.max !worst_abs (Float.abs phases.(k))
      done;
      let pm = 180.0 -. (!worst_abs *. 180.0 /. Float.pi) in
      { gain_db; gbw_hz = fu; pm_deg = pm })
  with
  | result -> Some result
  | exception Mna.Singular -> None
