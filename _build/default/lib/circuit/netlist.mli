(** Expansion of a sized topology into MNA-ready primitive elements.

    The netlist is a flat list of linear primitives over a node set
    consisting of ground, the driven input [vin], the three main circuit
    nodes (v1, v2, vout) and any internal nodes introduced by transconductors
    with a series element (the transconductor's parasitic-loaded output). *)

type node =
  | Gnd
  | Vin  (** ideal AC source, amplitude 1 *)
  | N of int  (** unknown: 0 = v1, 1 = v2, 2 = vout, 3+ = internal *)

val v1 : node
val v2 : node
val vout : node

type prim =
  | Conductance of node * node * float  (** siemens *)
  | Capacitance of node * node * float  (** farad *)
  | Series_rc of node * node * float * float
      (** R (ohm) and C (farad) in series; stamped with the analytic
          admittance [Y(s) = sC / (1 + sRC)]. *)
  | Vccs of { ctrl : node; out : node; gm : float; pole_hz : float }
      (** signed transconductance: injects [gm(jw) * v(ctrl)] into [out],
          with the single-pole roll-off [gm(jw) = gm / (1 + jf/pole_hz)]
          at the device transit frequency — the excess phase that makes
          power-efficient (weak-inversion) stages slow. *)

type gm_instance = {
  gm_name : string;  (** e.g. ["stage1"], ["v1-vout.gm"] *)
  gm_value : float;
  gm_over_id : float;
  bias_a : float;  (** bias current, A *)
}

type t = {
  prims : prim list;
  n_unknowns : int;
  power_w : float;  (** static power including process overhead *)
  gms : gm_instance list;
}

val build : ?process:Process.t -> Topology.t -> sizing:float array -> cl_f:float -> t
(** [build topo ~sizing ~cl_f] expands the topology under the physical sizing
    vector (see {!Params}) with load capacitance [cl_f] at [vout].
    @raise Invalid_argument when the sizing vector does not match the
    topology's schema dimension. *)
