(** Sizing-parameter schema of a topology.

    Every topology exposes a fixed vector of tunable parameters: the three
    stage transconductances and their inversion levels, followed by the
    parameters of each variable subcircuit in canonical slot order.  The
    sizing BO works on the normalized cube [0,1]^d; this module maps it to
    physical values (log scale for gm/R/C, linear for gm/Id). *)

type kind = [ `Gm | `Gm_over_id | `R | `C ]

type param = {
  name : string;  (** e.g. ["gm1"], ["v1-vout.R"] *)
  kind : kind;
  lo : float;
  hi : float;
  log_scale : bool;
}

type schema

val schema : Topology.t -> schema
val dim : schema -> int
val params : schema -> param list
val topology : schema -> Topology.t

val denormalize : schema -> float array -> float array
(** Map a point of [0,1]^d to physical parameter values (clamps inputs to
    [0,1] first). @raise Invalid_argument on a dimension mismatch. *)

val normalize : schema -> float array -> float array
(** Inverse of {!denormalize} (clamps to the parameter box). *)

val random_point : Into_util.Rng.t -> schema -> float array
(** Uniform point of the normalized cube. *)

val default_point : schema -> float array
(** Mid-cube point: geometric mean of each log-scaled range. *)

val slot_param_indices : schema -> Topology.slot -> int list
(** Positions in the sizing vector owned by the given slot (empty when the
    slot carries no tunable element). *)
