(** Exact pole/zero extraction from the linearized circuit pencil.

    Poles are the solutions of [det(G + sC) = 0]; transmission zeros of the
    vin->vout transfer are the solutions with the input column and output
    row adjoined.  Both are found through the inverted-pencil trick: for a
    shift [sigma] with [G + sigma C] regular, [det(G + sC) = 0] iff
    [1/(sigma - s)] is an eigenvalue of [(G + sigma C)^-1 C]; near-zero
    eigenvalues correspond to poles at infinity and are discarded.

    This powers designer-facing reports ("the compensation splits the poles
    to ... and introduces a zero at ...") that complement the WL-gradient
    interpretability of the paper. *)

type t = {
  poles_hz : Complex.t list;  (** natural frequencies, in Hz, by |.| *)
  zeros_hz : Complex.t list;  (** transmission zeros, in Hz, by |.| *)
}

val analyze : Netlist.t -> t
(** @raise Into_linalg.Eig.No_convergence on pathological pencils (not
    observed for circuit matrices; guarded in tests). *)

val open_loop_poles : Netlist.t -> Complex.t list
(** Poles only (skips the transmission-zero pencil); the cheap stability
    check used on every circuit evaluation. *)

val closed_loop_poles : Netlist.t -> Complex.t list
(** Poles (Hz) of the amplifier in unity negative feedback
    ([u = vin - vout]): the exact stability verdict the phase-margin
    heuristic approximates.  Obtained from the pencil with the input
    coupling folded back onto the output row. *)

val is_stable : t -> bool
(** All poles strictly in the left half plane. *)

val dominant_pole_hz : t -> float option
(** Magnitude of the smallest-|.| pole. *)

val describe : t -> string
(** Multi-line human-readable listing. *)
