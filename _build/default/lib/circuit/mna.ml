exception Singular

let cx re im = { Complex.re; im }

(* Admittance of a primitive two-terminal at angular frequency w. *)
let admittance prim w =
  match prim with
  | Netlist.Conductance (_, _, g) -> cx g 0.0
  | Netlist.Capacitance (_, _, c) -> cx 0.0 (w *. c)
  | Netlist.Series_rc (_, _, r, c) ->
    (* Y = jwC / (1 + jwRC) *)
    Complex.div (cx 0.0 (w *. c)) (cx 1.0 (w *. r *. c))
  | Netlist.Vccs _ -> invalid_arg "Mna.admittance: not a two-terminal"

let assemble netlist ~freq_hz =
  let w = 2.0 *. Float.pi *. freq_hz in
  let n = netlist.Netlist.n_unknowns in
  let y = Into_linalg.Cmat.create n n in
  let rhs = Array.make n Complex.zero in
  let stamp_two_terminal a b yv =
    (* KCL rows for an admittance between nodes a and b; the unit source at
       vin moves its terms to the right-hand side. *)
    (match a with
    | Netlist.N i -> (
      Into_linalg.Cmat.add_entry y i i yv;
      match b with
      | Netlist.N j ->
        Into_linalg.Cmat.add_entry y i j (Complex.neg yv)
      | Netlist.Vin -> rhs.(i) <- Complex.add rhs.(i) yv
      | Netlist.Gnd -> ())
    | Netlist.Vin | Netlist.Gnd -> ());
    match b with
    | Netlist.N j -> (
      Into_linalg.Cmat.add_entry y j j yv;
      match a with
      | Netlist.N i -> Into_linalg.Cmat.add_entry y j i (Complex.neg yv)
      | Netlist.Vin -> rhs.(j) <- Complex.add rhs.(j) yv
      | Netlist.Gnd -> ())
    | Netlist.Vin | Netlist.Gnd -> ()
  in
  let stamp_vccs ~ctrl ~out gm pole_hz =
    (* Injects gm(jw) * v(ctrl) into node out, with the transconductance
       rolling off at the device transit frequency:
       gm(jw) = gm / (1 + j f/pole_hz). *)
    let gmw = Complex.div (cx gm 0.0) (cx 1.0 (freq_hz /. pole_hz)) in
    match out with
    | Netlist.N o -> (
      match ctrl with
      | Netlist.N c -> Into_linalg.Cmat.add_entry y o c (Complex.neg gmw)
      | Netlist.Vin -> rhs.(o) <- Complex.add rhs.(o) gmw
      | Netlist.Gnd -> ())
    | Netlist.Vin | Netlist.Gnd -> ()
  in
  List.iter
    (fun prim ->
      match prim with
      | Netlist.Conductance (a, b, _) | Netlist.Capacitance (a, b, _)
      | Netlist.Series_rc (a, b, _, _) ->
        stamp_two_terminal a b (admittance prim w)
      | Netlist.Vccs { ctrl; out; gm; pole_hz } -> stamp_vccs ~ctrl ~out gm pole_hz)
    netlist.Netlist.prims;
  (y, rhs)

let solve netlist ~freq_hz =
  let y, rhs = assemble netlist ~freq_hz in
  try Into_linalg.Cmat.solve y rhs with Into_linalg.Cmat.Singular -> raise Singular

let transfer netlist ~freq_hz = (solve netlist ~freq_hz).(2)

let element_admittance prim ~freq_hz = admittance prim (2.0 *. Float.pi *. freq_hz)

let solve_with_injection netlist ~freq_hz ~into ~out_of =
  let y, _vin_rhs = assemble netlist ~freq_hz in
  let rhs = Array.make netlist.Netlist.n_unknowns Complex.zero in
  (match into with
  | Netlist.N i -> rhs.(i) <- Complex.add rhs.(i) Complex.one
  | Netlist.Gnd | Netlist.Vin -> ());
  (match out_of with
  | Netlist.N i -> rhs.(i) <- Complex.sub rhs.(i) Complex.one
  | Netlist.Gnd | Netlist.Vin -> ());
  try Into_linalg.Cmat.solve y rhs with Into_linalg.Cmat.Singular -> raise Singular
