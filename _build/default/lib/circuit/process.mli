(** Behavior-level "process" constants: the physical model behind the
    abstract transconductor stages (Section II-C and DESIGN.md section 4).

    Every transconductor [gm] draws a bias current [Id = gm / (gm/Id)],
    sees an output resistance [Ro = va / Id] (Early-voltage model) and an
    output capacitance [Co = gm / (2 pi ft) + co_floor] (transit-frequency
    model).  The transistor-level re-evaluation uses a degraded process to
    model extracted parasitics and bias overhead. *)

type t = {
  vdd : float;  (** supply voltage, V *)
  va : float;  (** Early voltage, V *)
  ft_hz : float;  (** device transit frequency, Hz *)
  co_floor_f : float;  (** minimum parasitic node capacitance, F *)
  power_overhead : float;  (** multiplicative bias-circuit power overhead *)
  cross_cap_factor : float;
      (** extra Miller (Cgd-like) coupling capacitance across each stage, as
          a fraction of the stage's [Co]; zero at the behavior level. *)
}

val behavioral : t
(** The nominal behavior-level model (optimistic parasitics, no overhead). *)

val gm_lo : float
val gm_hi : float
(** Transconductance sizing range, S. *)

val gmid_lo : float
val gmid_hi : float
(** Inversion-level (gm/Id) sizing range, S/A. *)

val r_lo : float
val r_hi : float
(** Resistor sizing range, ohm. *)

val c_lo : float
val c_hi : float
(** Capacitor sizing range, F. *)

val bias_current : gm:float -> gm_over_id:float -> float
(** [Id = gm / (gm/Id)]. *)

val output_resistance : t -> id:float -> float
(** [Ro = va / Id]. *)

val transit_frequency : t -> gm_over_id:float -> float
(** Effective device transit frequency at the given inversion level:
    [ft * (gmid_lo / gm_over_id)^2.5].  Weak inversion (high gm/Id) buys
    gain and power efficiency but costs speed, which is the trade-off the
    specs of Table I exercise. *)

val output_capacitance : t -> gm:float -> gm_over_id:float -> float
(** [Co = gm / (2 pi ft_eff) + co_floor]. *)
