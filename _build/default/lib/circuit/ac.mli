(** AC small-signal analysis: open-loop gain, gain-bandwidth product and
    phase margin from a log-frequency sweep of the MNA transfer function.

    Phase is unwrapped along the sweep starting from its low-frequency value
    (approximately 0 degrees when the DC gain is positive, +/-180 when an odd
    number of inversions survives to DC, in which case unity negative
    feedback would be positive feedback and the phase margin comes out
    non-positive).  The unity-gain frequency is located by bisection inside
    the last downward |A| = 1 crossing of the sweep. *)

type t = {
  gain_db : float;  (** open-loop gain magnitude at the lowest frequency *)
  gbw_hz : float;  (** unity-gain frequency; 0 when |A| never reaches 1 *)
  pm_deg : float;
      (** [180 - max |phase|] over the band where |A| >= 1 (including the
          unity crossing itself); 0 when there is no crossing.  This is the
          smallest distance of the unwrapped open-loop phase to the Nyquist
          critical lines at +/-180 degrees while the gain is above unity:
          it equals the textbook crossing margin for monotone-phase designs
          and correctly penalizes conditionally stable resonances and
          sign-flipping feedforward responses. *)
}

val f_min : float
(** Lowest sweep frequency (serves as "DC"). *)

val f_max : float
(** Highest sweep frequency. *)

val analyze : Netlist.t -> t option
(** [None] when the MNA system is singular somewhere along the sweep. *)

val bode : Netlist.t -> freqs:float array -> (float * float * float) array
(** [(freq, magnitude_db, unwrapped_phase_deg)] triples for custom sweeps
    (used by the examples to print Bode plots).
    @raise Mna.Singular on a singular system. *)
