(** Isotropic squared-exponential kernel on normalized parameter vectors —
    the surrogate kernel of the continuous sizing BO. *)

val kernel : lengthscale:float -> float array -> float array -> float
(** [exp (-||x-x'||^2 / (2 l^2))]. *)

val gram : lengthscale:float -> float array array -> Into_linalg.Mat.t
val cross : lengthscale:float -> float array array -> float array -> float array
