module Mat = Into_linalg.Mat
module Cholesky = Into_linalg.Cholesky

type t = {
  chol : Cholesky.t;
  alpha : float array;
  y_mean : float;
  y_std : float;
  signal : float;
  noise : float;
  lml : float;
}

let fit ~gram ~y ~signal ~noise =
  let n = Array.length y in
  if n = 0 then invalid_arg "Gp.fit: empty data";
  if Mat.rows gram <> n || Mat.cols gram <> n then invalid_arg "Gp.fit: dimension mismatch";
  if signal <= 0.0 || noise <= 0.0 then invalid_arg "Gp.fit: non-positive hyperparameter";
  let z, y_mean, y_std = Into_util.Stats.normalize y in
  let cov = Mat.add_diagonal (Mat.scale signal gram) noise in
  let chol, _jitter = Cholesky.decompose_with_jitter cov in
  let alpha = Cholesky.solve chol z in
  let fit_term = -0.5 *. Into_linalg.Vec.dot z alpha in
  let lml =
    fit_term -. (0.5 *. Cholesky.log_det chol)
    -. (0.5 *. float_of_int n *. log (2.0 *. Float.pi))
  in
  { chol; alpha; y_mean; y_std; signal; noise; lml }

let n_observations t = Array.length t.alpha
let log_marginal_likelihood t = t.lml

let predict t ~k_star ~k_self =
  if Array.length k_star <> Array.length t.alpha then
    invalid_arg "Gp.predict: k_star dimension mismatch";
  let ks = Array.map (fun k -> t.signal *. k) k_star in
  let mean_z = Into_linalg.Vec.dot ks t.alpha in
  let v = Cholesky.solve_lower t.chol ks in
  let var_z = (t.signal *. k_self) +. t.noise -. Into_linalg.Vec.dot v v in
  let var_z = Float.max var_z 0.0 in
  ((mean_z *. t.y_std) +. t.y_mean, var_z *. t.y_std *. t.y_std)

let alpha t = Array.copy t.alpha
let y_mean t = t.y_mean
let y_std t = t.y_std
let signal t = t.signal
let noise t = t.noise
