lib/gp/rbf.ml: Array Into_linalg
