lib/gp/wl_gp.ml: Array Gp Into_graph Into_linalg List
