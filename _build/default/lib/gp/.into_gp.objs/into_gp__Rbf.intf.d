lib/gp/rbf.mli: Into_linalg
