lib/gp/gp.mli: Into_linalg
