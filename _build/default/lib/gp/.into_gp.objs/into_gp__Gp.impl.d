lib/gp/gp.ml: Array Float Into_linalg Into_util
