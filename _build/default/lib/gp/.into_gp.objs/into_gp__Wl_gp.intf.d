lib/gp/wl_gp.mli: Gp Into_graph
