let sq_dist a b =
  if Array.length a <> Array.length b then invalid_arg "Rbf: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let kernel ~lengthscale a b =
  if lengthscale <= 0.0 then invalid_arg "Rbf.kernel: non-positive lengthscale";
  exp (-.sq_dist a b /. (2.0 *. lengthscale *. lengthscale))

let gram ~lengthscale xs =
  let n = Array.length xs in
  Into_linalg.Mat.init n n (fun i j -> kernel ~lengthscale xs.(i) xs.(j))

let cross ~lengthscale xs q = Array.map (fun x -> kernel ~lengthscale x q) xs
