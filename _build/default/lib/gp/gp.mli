(** Gaussian-process regression over a precomputed kernel (Eqs. 3-4).

    The module is agnostic to where the kernel comes from: the topology
    surrogate feeds WL gram matrices, the sizing surrogate feeds RBF gram
    matrices.  Targets are standardized internally; the covariance is
    [signal * K + noise * I] with jitter-protected Cholesky. *)

type t

val fit : gram:Into_linalg.Mat.t -> y:float array -> signal:float -> noise:float -> t
(** @raise Invalid_argument on a dimension mismatch or empty data. *)

val n_observations : t -> int

val log_marginal_likelihood : t -> float
(** Of the standardized targets; the model-selection criterion. *)

val predict : t -> k_star:float array -> k_self:float -> float * float
(** [(mean, variance)] in the original target units given raw kernel values
    [k_star] against the training set and the query's self-kernel
    [k_self]. Variance is clamped to be non-negative. *)

val alpha : t -> float array
(** [(signal*K + noise*I)^-1 y_standardized] — the representer weights; the
    posterior mean is [signal * k_star . alpha] (standardized).  Used by the
    analytic WL-feature gradient (Eq. 5). *)

val y_mean : t -> float
val y_std : t -> float
val signal : t -> float
val noise : t -> float
