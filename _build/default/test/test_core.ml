(* Tests for Into_core: acquisition functions, objective transforms, the
   sizing BO, candidate generation, Algorithm 1, and the interpretability
   layer (attribution, sensitivity, refinement). *)

module Acquisition = Into_core.Acquisition
module Objective = Into_core.Objective
module Sizing = Into_core.Sizing
module Sizing_transfer = Into_core.Sizing_transfer
module Evaluator = Into_core.Evaluator
module Candidates = Into_core.Candidates
module Topo_bo = Into_core.Topo_bo
module Attribution = Into_core.Attribution
module Sensitivity = Into_core.Sensitivity
module Refine = Into_core.Refine
module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Params = Into_circuit.Params
module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec
module Rng = Into_util.Rng

let check_close tol = Alcotest.(check (float tol))

(* --- Acquisition --- *)

let test_ei_basics () =
  check_close 1e-12 "deterministic below best" 0.0
    (Acquisition.expected_improvement ~mean:0.0 ~std:0.0 ~best:1.0);
  check_close 1e-12 "deterministic above best" 2.0
    (Acquisition.expected_improvement ~mean:3.0 ~std:0.0 ~best:1.0);
  let ei = Acquisition.expected_improvement ~mean:0.0 ~std:1.0 ~best:0.0 in
  check_close 1e-6 "EI at best with unit std" (1.0 /. sqrt (2.0 *. Float.pi)) ei

let prop_ei_nonnegative =
  QCheck.Test.make ~name:"EI is nonnegative" ~count:300
    QCheck.(triple (float_range (-10.) 10.) (float_range 0.0 5.0) (float_range (-10.) 10.))
    (fun (mean, std, best) -> Acquisition.expected_improvement ~mean ~std ~best >= 0.0)

let prop_ei_monotone_in_mean =
  QCheck.Test.make ~name:"EI monotone in the mean" ~count:200
    QCheck.(triple (float_range (-5.) 5.) (float_range 0.01 3.0) (float_range (-5.) 5.))
    (fun (mean, std, best) ->
      Acquisition.expected_improvement ~mean:(mean +. 0.5) ~std ~best
      >= Acquisition.expected_improvement ~mean ~std ~best -. 1e-12)

let test_probability_feasible () =
  check_close 1e-9 "min sense at bound" 0.5
    (Acquisition.probability_feasible ~mean:1.0 ~std:1.0 ~bound:1.0 ~sense:`Min);
  Alcotest.(check bool) "min sense above" true
    (Acquisition.probability_feasible ~mean:3.0 ~std:0.5 ~bound:1.0 ~sense:`Min > 0.99);
  Alcotest.(check bool) "max sense above" true
    (Acquisition.probability_feasible ~mean:3.0 ~std:0.5 ~bound:1.0 ~sense:`Max < 0.01);
  check_close 1e-12 "deterministic min" 1.0
    (Acquisition.probability_feasible ~mean:2.0 ~std:0.0 ~bound:1.0 ~sense:`Min)

let test_weighted_ei () =
  let v = Acquisition.weighted_ei ~w:0.5 ~ei:4.0 ~feasibility:[ 0.25 ] in
  check_close 1e-9 "geometric blend" 1.0 v;
  check_close 1e-9 "w=1 ignores feasibility" 4.0
    (Acquisition.weighted_ei ~w:1.0 ~ei:4.0 ~feasibility:[ 0.01 ]);
  (match Acquisition.weighted_ei ~w:1.5 ~ei:1.0 ~feasibility:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "w > 1 accepted");
  check_close 1e-12 "feasibility product" 0.06
    (Acquisition.feasibility_only [ 0.2; 0.3 ])

(* --- Objective --- *)

let test_objective_transforms () =
  let p = { Perf.gain_db = 90.0; gbw_hz = 1e6; pm_deg = 60.0; power_w = 1e-4 } in
  let v = Objective.metric_values p in
  check_close 1e-9 "gain passthrough" 90.0 v.(0);
  check_close 1e-9 "gbw log10" 6.0 v.(1);
  check_close 1e-9 "pm passthrough" 60.0 v.(2);
  check_close 1e-9 "power log10" (-4.0) v.(3)

let test_objective_bounds_consistent () =
  (* A perf exactly at the bounds transforms to values exactly at the
     transformed bounds. *)
  let s = Spec.s1 in
  let p =
    {
      Perf.gain_db = s.Spec.min_gain_db;
      gbw_hz = s.Spec.min_gbw_hz;
      pm_deg = s.Spec.min_pm_deg;
      power_w = s.Spec.max_power_w;
    }
  in
  let v = Objective.metric_values p in
  List.iteri
    (fun i (bound, _) -> check_close 1e-9 "bound matches" bound v.(i))
    (Objective.bounds s)

let test_fom_value_floor () =
  let p = { Perf.gain_db = 0.0; gbw_hz = 0.0; pm_deg = 0.0; power_w = 1e-4 } in
  check_close 1e-9 "floored log fom" (-6.0) (Objective.fom_value p ~cl_f:10e-12)

(* --- Sizing --- *)

let small_sizing = { Sizing.default_config with Sizing.n_init = 5; n_iter = 8; n_candidates = 20 }

let test_sizing_budget () =
  let rng = Rng.create ~seed:41 in
  let r = Sizing.optimize ~config:small_sizing ~rng ~spec:Spec.s1 (Topology.nmc ()) in
  Alcotest.(check int) "n_sims = init + iterations" 13 r.Sizing.n_sims;
  Alcotest.(check bool) "found something" true (Sizing.best r <> None)

let test_sizing_improves_over_random () =
  (* The BO phase should not be worse than its own initialization. *)
  let rng = Rng.create ~seed:42 in
  let t = Topology.nmc () in
  let r = Sizing.optimize ~rng ~spec:Spec.s1 t in
  match Sizing.best r with
  | None -> Alcotest.fail "sizing failed entirely"
  | Some o ->
    Alcotest.(check bool) "positive power" true (o.Sizing.perf.Perf.power_w > 0.0)

let test_sizing_free_dims () =
  let t = Topology.nmc () in
  let schema = Params.schema t in
  let start = Params.default_point schema in
  let rng = Rng.create ~seed:43 in
  let r =
    Sizing.optimize ~config:small_sizing ~start ~free_dims:[ 6; 7 ] ~rng ~spec:Spec.s1 t
  in
  match Sizing.best r with
  | None -> Alcotest.fail "sizing failed"
  | Some o ->
    let u = Params.normalize schema o.Sizing.sizing in
    (* Frozen coordinates stay at the start point. *)
    List.iter
      (fun d -> check_close 1e-9 "frozen dim" start.(d) u.(d))
      [ 0; 1; 2; 3; 4; 5 ]

let test_sizing_start_validation () =
  match
    Sizing.optimize ~start:[| 0.5 |] ~rng:(Rng.create ~seed:1) ~spec:Spec.s1
      (Topology.nmc ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad start accepted"

(* --- Sizing_transfer --- *)

let test_transfer_identity () =
  let t = Topology.nmc () in
  let schema = Params.schema t in
  let sizing = Params.denormalize schema (Params.default_point schema) in
  let back = Sizing_transfer.transfer ~from_schema:schema ~from_sizing:sizing ~to_schema:schema in
  Alcotest.(check (array (float 1e-12))) "identity transfer" sizing back

let test_transfer_and_new_dims () =
  let t = Topology.nmc () in
  let t' = Topology.set t Topology.V1_gnd (Subcircuit.Passive Subcircuit.Single_c) in
  let s = Params.schema t and s' = Params.schema t' in
  let sizing = Params.denormalize s (Params.default_point s) in
  let moved = Sizing_transfer.transfer ~from_schema:s ~from_sizing:sizing ~to_schema:s' in
  Alcotest.(check int) "dimension grows" (Params.dim s + 1) (Array.length moved);
  (* Old values preserved (stage params at the front). *)
  check_close 1e-12 "gm1 preserved" sizing.(0) moved.(0);
  let fresh = Sizing_transfer.new_dims ~from_schema:s ~to_schema:s' in
  Alcotest.(check int) "one new dim" 1 (List.length fresh);
  (* Removal direction: no new dims. *)
  Alcotest.(check (list int)) "no new dims on removal" []
    (Sizing_transfer.new_dims ~from_schema:s' ~to_schema:s)

(* --- Candidates --- *)

let test_candidates_distinct_unvisited () =
  let rng = Rng.create ~seed:51 in
  let visited_set = Hashtbl.create 16 in
  for i = 0 to 99 do
    Hashtbl.replace visited_set i ()
  done;
  let visited t = Hashtbl.mem visited_set (Topology.to_index t) in
  let pool =
    Candidates.generate ~rng ~strategy:Candidates.Mixed ~pool:50
      ~best:[ Topology.nmc () ] ~visited
  in
  Alcotest.(check int) "pool filled" 50 (List.length pool);
  let idxs = List.map Topology.to_index pool in
  Alcotest.(check int) "distinct" 50 (List.length (List.sort_uniq compare idxs));
  Alcotest.(check bool) "unvisited" true (List.for_all (fun i -> i >= 100) idxs)

let test_candidates_mutation_local () =
  let rng = Rng.create ~seed:52 in
  let seed_topo = Topology.nmc () in
  let pool =
    Candidates.generate ~rng ~strategy:Candidates.Mutation_only ~pool:30
      ~best:[ seed_topo ] ~visited:(fun _ -> false)
  in
  (* One mutation step keeps candidates within a small Hamming ball. *)
  Alcotest.(check bool) "hamming <= 4" true
    (List.for_all (fun t -> Topology.hamming seed_topo t <= 4) pool);
  let mean_h =
    Into_util.Stats.mean
      (List.map (fun t -> float_of_int (Topology.hamming seed_topo t)) pool)
  in
  Alcotest.(check bool) "mostly local" true (mean_h < 2.5)

let test_candidates_empty_best_falls_back () =
  let rng = Rng.create ~seed:53 in
  let pool =
    Candidates.generate ~rng ~strategy:Candidates.Mutation_only ~pool:10 ~best:[]
      ~visited:(fun _ -> false)
  in
  Alcotest.(check int) "random fallback" 10 (List.length pool)

let test_strategy_names () =
  Alcotest.(check string) "mixed" "INTO-OA" (Candidates.strategy_name Candidates.Mixed);
  Alcotest.(check string) "random" "INTO-OA-r" (Candidates.strategy_name Candidates.Random_only);
  Alcotest.(check string) "mutation" "INTO-OA-m"
    (Candidates.strategy_name Candidates.Mutation_only)

(* --- Evaluator --- *)

let test_evaluator () =
  let rng = Rng.create ~seed:61 in
  match Evaluator.evaluate ~sizing_config:small_sizing ~rng ~spec:Spec.s1 (Topology.nmc ()) with
  | None -> Alcotest.fail "NMC should evaluate"
  | Some e ->
    Alcotest.(check int) "sims counted" 13 e.Evaluator.n_sims;
    check_close 1e-9 "fom consistent"
      (Perf.fom e.Evaluator.perf ~cl_f:Spec.s1.Spec.cl_f)
      e.Evaluator.fom;
    Alcotest.(check bool) "feasible flag consistent"
      (Perf.satisfies e.Evaluator.perf Spec.s1)
      e.Evaluator.feasible

(* --- Topo_bo (Algorithm 1) --- *)

let tiny_config strategy =
  {
    (Topo_bo.default_config strategy) with
    Topo_bo.n_init = 3;
    iterations = 4;
    pool = 20;
    sizing = small_sizing;
  }

let test_topo_bo_run () =
  let rng = Rng.create ~seed:71 in
  let r = Topo_bo.run ~config:(tiny_config Candidates.Mixed) ~rng ~spec:Spec.s1 () in
  Alcotest.(check int) "one step per evaluation" 7 (List.length r.Topo_bo.steps);
  Alcotest.(check int) "sims = 7 * 13" (7 * 13) r.Topo_bo.total_sims;
  (* Cumulative sims strictly increasing. *)
  let sims = List.map (fun (s : Topo_bo.step) -> s.Topo_bo.cumulative_sims) r.Topo_bo.steps in
  Alcotest.(check bool) "monotone" true (List.sort compare sims = sims);
  (* Visited topologies never repeat. *)
  let idxs =
    List.filter_map
      (fun (s : Topo_bo.step) ->
        Option.map
          (fun (e : Evaluator.evaluation) -> Topology.to_index e.Evaluator.topology)
          s.Topo_bo.evaluation)
      r.Topo_bo.steps
  in
  Alcotest.(check int) "no repeats" (List.length idxs)
    (List.length (List.sort_uniq compare idxs));
  Alcotest.(check int) "five models" 5 (List.length r.Topo_bo.models)

let test_topo_bo_best_is_feasible () =
  let rng = Rng.create ~seed:72 in
  let cfg = { (tiny_config Candidates.Mixed) with Topo_bo.n_init = 6; iterations = 10 } in
  let r = Topo_bo.run ~config:cfg ~rng ~spec:Spec.s1 () in
  match r.Topo_bo.best with
  | None -> () (* a tiny run may legitimately fail *)
  | Some e -> Alcotest.(check bool) "best is feasible" true e.Evaluator.feasible

(* --- Attribution --- *)

let trained_models seed =
  let rng = Rng.create ~seed in
  let cfg = { (tiny_config Candidates.Mixed) with Topo_bo.n_init = 8; iterations = 12 } in
  Topo_bo.run ~config:cfg ~rng ~spec:Spec.s1 ()

let test_attribution_covers_connected_slots () =
  let r = trained_models 81 in
  let model = List.assoc "gbw" r.Topo_bo.models in
  let t = Topology.nmc () in
  let reports = Attribution.slot_gradients model t in
  Alcotest.(check int) "one report per connected slot" 1 (List.length reports);
  let rep = List.hd reports in
  Alcotest.(check string) "the v1-vout slot" "v1-vout" (Topology.slot_name rep.Attribution.slot);
  Alcotest.(check bool) "finite gradient" true (Float.is_finite rep.Attribution.gradient)

let test_attribution_top_features () =
  let r = trained_models 82 in
  let model = List.assoc "gain" r.Topo_bo.models in
  let feats = Attribution.top_features model (Topology.nmc ()) ~n:5 in
  Alcotest.(check bool) "at most 5" true (List.length feats <= 5);
  Alcotest.(check bool) "sorted by |gradient|" true
    (let mags = List.map (fun (_, g) -> Float.abs g) feats in
     List.sort (fun a b -> compare b a) mags = mags)

(* --- Sensitivity --- *)

let sized_nmc seed =
  let rng = Rng.create ~seed in
  let r = Sizing.optimize ~rng ~spec:Spec.s1 (Topology.nmc ()) in
  match Sizing.best r with
  | Some o -> o.Sizing.sizing
  | None -> Alcotest.fail "sizing failed"

let test_sensitivity_remove () =
  let t = Topology.nmc () in
  let sizing = sized_nmc 91 in
  Alcotest.(check bool) "unconnected slot yields None" true
    (Sensitivity.remove_slot t ~sizing Topology.V1_gnd = None);
  match Sensitivity.remove_slot t ~sizing Topology.V1_vout with
  | None -> Alcotest.fail "connected slot should remove"
  | Some (reduced, sizing') ->
    Alcotest.(check int) "smaller schema" 6 (Array.length sizing');
    Alcotest.(check bool) "slot now unconnected" true
      (Subcircuit.equal (Topology.get reduced Topology.V1_vout) Subcircuit.No_conn)

let test_sensitivity_analyze () =
  let t = Topology.nmc () in
  let sizing = sized_nmc 92 in
  let deltas = Sensitivity.analyze t ~sizing ~cl_f:10e-12 in
  Alcotest.(check int) "one delta per connected slot" 1 (List.length deltas);
  let d = List.hd deltas in
  (* Removing the only compensation of a sized NMC design hurts PM. *)
  match Sensitivity.d_pm_deg d with
  | None -> () (* removal may even fail to simulate; acceptable *)
  | Some dpm -> Alcotest.(check bool) "compensation removal costs PM" true (dpm < 10.0)

(* --- Refine --- *)

let test_refine_feasible_design_is_noop () =
  let r = trained_models 101 in
  match r.Topo_bo.best with
  | None -> () (* nothing feasible to exercise; skip *)
  | Some e ->
    let rng = Rng.create ~seed:102 in
    let outcome =
      Refine.refine ~models:r.Topo_bo.models ~rng ~spec:Spec.s1
        ~sizing:e.Evaluator.sizing e.Evaluator.topology
    in
    Alcotest.(check bool) "already feasible" true (outcome.Refine.critical_metric = None);
    Alcotest.(check int) "single verification sim" 1 outcome.Refine.n_sims;
    Alcotest.(check bool) "returned as refined" true (outcome.Refine.refined <> None)

let test_refine_missing_model () =
  let sizing = sized_nmc 103 in
  let rng = Rng.create ~seed:104 in
  (* S-2's 110 dB gain will be violated by an S-1 sizing; with no models the
     refinement must fail loudly. *)
  match Refine.refine ~models:[] ~rng ~spec:Spec.s2 ~sizing (Topology.nmc ()) with
  | exception Invalid_argument _ -> ()
  | outcome ->
    (* Unless the sizing happens to satisfy S-2 already. *)
    Alcotest.(check bool) "no critical metric" true (outcome.Refine.critical_metric = None)


(* --- Design_report --- *)

let test_design_report () =
  let r = trained_models 111 in
  let topo = Topology.nmc () in
  let sizing = sized_nmc 112 in
  let report =
    Into_core.Design_report.render ~models:r.Topo_bo.models ~spec:Spec.s1 ~sizing topo
  in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("report contains " ^ fragment) true
        (let nl = String.length fragment and hl = String.length report in
         let rec go i = i + nl <= hl && (String.sub report i nl = fragment || go (i + 1)) in
         go 0))
    [ "design report"; "slot gradients"; "pole/zero"; "remove-and-resimulate"; "v1-vout" ]

let test_design_report_no_models () =
  let sizing = sized_nmc 113 in
  let report =
    Into_core.Design_report.render ~models:[] ~spec:Spec.s1 ~sizing (Topology.nmc ())
  in
  Alcotest.(check bool) "degrades gracefully" true
    (let needle = "(no surrogate)" in
     let nl = String.length needle and hl = String.length report in
     let rec go i = i + nl <= hl && (String.sub report i nl = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "into_core"
    [
      ( "acquisition",
        [
          Alcotest.test_case "EI basics" `Quick test_ei_basics;
          Alcotest.test_case "probability of feasibility" `Quick test_probability_feasible;
          Alcotest.test_case "weighted EI" `Quick test_weighted_ei;
          QCheck_alcotest.to_alcotest prop_ei_nonnegative;
          QCheck_alcotest.to_alcotest prop_ei_monotone_in_mean;
        ] );
      ( "objective",
        [
          Alcotest.test_case "transforms" `Quick test_objective_transforms;
          Alcotest.test_case "bounds consistent" `Quick test_objective_bounds_consistent;
          Alcotest.test_case "fom floor" `Quick test_fom_value_floor;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "budget accounting" `Quick test_sizing_budget;
          Alcotest.test_case "returns evaluated design" `Quick test_sizing_improves_over_random;
          Alcotest.test_case "free dims freeze the rest" `Quick test_sizing_free_dims;
          Alcotest.test_case "start validation" `Quick test_sizing_start_validation;
        ] );
      ( "sizing_transfer",
        [
          Alcotest.test_case "identity" `Quick test_transfer_identity;
          Alcotest.test_case "transfer and new dims" `Quick test_transfer_and_new_dims;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "distinct and unvisited" `Quick test_candidates_distinct_unvisited;
          Alcotest.test_case "mutation stays local" `Quick test_candidates_mutation_local;
          Alcotest.test_case "empty best falls back" `Quick test_candidates_empty_best_falls_back;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
      ("evaluator", [ Alcotest.test_case "evaluation fields" `Quick test_evaluator ]);
      ( "topo_bo",
        [
          Alcotest.test_case "algorithm 1 bookkeeping" `Quick test_topo_bo_run;
          Alcotest.test_case "best is feasible" `Quick test_topo_bo_best_is_feasible;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "covers connected slots" `Quick test_attribution_covers_connected_slots;
          Alcotest.test_case "top features sorted" `Quick test_attribution_top_features;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "remove slot" `Quick test_sensitivity_remove;
          Alcotest.test_case "analyze deltas" `Quick test_sensitivity_analyze;
        ] );
      ( "design_report",
        [
          Alcotest.test_case "full report" `Quick test_design_report;
          Alcotest.test_case "no models" `Quick test_design_report_no_models;
        ] );
      ( "refine",
        [
          Alcotest.test_case "feasible design is a no-op" `Quick test_refine_feasible_design_is_noop;
          Alcotest.test_case "missing model" `Quick test_refine_missing_model;
        ] );
    ]
