(* Tests for Into_baselines: the FE-GA genetic baseline and the VGAE-BO
   embedding baseline. *)

module Fe_ga = Into_baselines.Fe_ga
module Embedding = Into_baselines.Embedding
module Vgae_bo = Into_baselines.Vgae_bo
module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Spec = Into_circuit.Spec
module Sizing = Into_core.Sizing
module Topo_bo = Into_core.Topo_bo
module Evaluator = Into_core.Evaluator
module Rng = Into_util.Rng

let small_sizing = { Sizing.default_config with Sizing.n_init = 5; n_iter = 5; n_candidates = 20 }

(* --- crossover --- *)

let prop_crossover_inherits_slots =
  QCheck.Test.make ~name:"crossover takes every slot from a parent" ~count:200
    QCheck.(triple small_int (int_range 0 (Topology.space_size - 1)) (int_range 0 (Topology.space_size - 1)))
    (fun (seed, ia, ib) ->
      let rng = Rng.create ~seed in
      let a = Topology.of_index ia and b = Topology.of_index ib in
      let child = Fe_ga.crossover rng a b in
      List.for_all
        (fun slot ->
          let c = Topology.get child slot in
          Subcircuit.equal c (Topology.get a slot) || Subcircuit.equal c (Topology.get b slot))
        Topology.slots)

let test_crossover_identical_parents () =
  let rng = Rng.create ~seed:1 in
  let a = Topology.nmc () in
  Alcotest.(check bool) "clone of identical parents" true
    (Topology.equal (Fe_ga.crossover rng a a) a)

(* --- FE-GA --- *)

let test_fe_ga_run () =
  let rng = Rng.create ~seed:11 in
  let config =
    { Fe_ga.default_config with Fe_ga.population = 4; iterations = 6; sizing = small_sizing }
  in
  let r = Fe_ga.run ~config ~rng ~spec:Spec.s1 () in
  Alcotest.(check int) "one step per evaluation" 10 (List.length r.Fe_ga.steps);
  Alcotest.(check int) "sims accounted" (10 * 10) r.Fe_ga.total_sims;
  (* The trace never revisits a topology. *)
  let idxs =
    List.filter_map
      (fun (s : Topo_bo.step) ->
        Option.map
          (fun (e : Evaluator.evaluation) -> Topology.to_index e.Evaluator.topology)
          s.Topo_bo.evaluation)
      r.Fe_ga.steps
  in
  Alcotest.(check int) "no revisits" (List.length idxs)
    (List.length (List.sort_uniq compare idxs));
  match r.Fe_ga.best with
  | None -> ()
  | Some e -> Alcotest.(check bool) "best is feasible" true e.Evaluator.feasible

(* --- Embedding --- *)

let test_embedding_dims () =
  Alcotest.(check int) "one-hot dimension 49" 49 Embedding.one_hot_dim;
  Alcotest.(check int) "latent dimension" 8 Embedding.dim;
  Alcotest.(check int) "embed length" Embedding.dim
    (Array.length (Embedding.embed (Topology.nmc ())))

let prop_one_hot_is_indicator =
  QCheck.Test.make ~name:"one-hot has exactly one 1 per slot" ~count:200
    QCheck.(int_range 0 (Topology.space_size - 1))
    (fun idx ->
      let v = Embedding.one_hot (Topology.of_index idx) in
      Array.length v = Embedding.one_hot_dim
      && Float.abs (Array.fold_left ( +. ) 0.0 v -. 5.0) < 1e-12
      && Array.for_all (fun x -> x = 0.0 || x = 1.0) v)

let test_embedding_deterministic () =
  let t = Topology.nmc () in
  Alcotest.(check (array (float 1e-15))) "same embedding across calls"
    (Embedding.embed t) (Embedding.embed t)

let prop_embedding_mostly_injective =
  QCheck.Test.make ~name:"different topologies embed differently" ~count:100
    QCheck.(pair (int_range 0 (Topology.space_size - 1)) (int_range 0 (Topology.space_size - 1)))
    (fun (ia, ib) ->
      QCheck.assume (ia <> ib);
      let ea = Embedding.embed (Topology.of_index ia) in
      let eb = Embedding.embed (Topology.of_index ib) in
      Array.exists2 (fun a b -> Float.abs (a -. b) > 1e-9) ea eb)

(* --- VGAE-BO --- *)

let test_vgae_bo_run () =
  let rng = Rng.create ~seed:21 in
  let config =
    {
      Vgae_bo.default_config with
      Vgae_bo.n_init = 3;
      iterations = 5;
      pool = 30;
      sizing = small_sizing;
    }
  in
  let r = Vgae_bo.run ~config ~rng ~spec:Spec.s1 () in
  Alcotest.(check int) "one step per evaluation" 8 (List.length r.Vgae_bo.steps);
  Alcotest.(check int) "sims accounted" (8 * 10) r.Vgae_bo.total_sims;
  let sims =
    List.map (fun (s : Topo_bo.step) -> s.Topo_bo.cumulative_sims) r.Vgae_bo.steps
  in
  Alcotest.(check bool) "monotone budget" true (List.sort compare sims = sims)

let () =
  Alcotest.run "into_baselines"
    [
      ( "crossover",
        [
          Alcotest.test_case "identical parents" `Quick test_crossover_identical_parents;
          QCheck_alcotest.to_alcotest prop_crossover_inherits_slots;
        ] );
      ("fe_ga", [ Alcotest.test_case "run bookkeeping" `Quick test_fe_ga_run ]);
      ( "embedding",
        [
          Alcotest.test_case "dimensions" `Quick test_embedding_dims;
          Alcotest.test_case "deterministic" `Quick test_embedding_deterministic;
          QCheck_alcotest.to_alcotest prop_one_hot_is_indicator;
          QCheck_alcotest.to_alcotest prop_embedding_mostly_injective;
        ] );
      ("vgae_bo", [ Alcotest.test_case "run bookkeeping" `Quick test_vgae_bo_run ]);
    ]
