(* Tests for Into_gp: generic GP regression, the RBF kernel and the
   WL-kernel GP over circuit graphs with its analytic feature gradient. *)

module Gp = Into_gp.Gp
module Rbf = Into_gp.Rbf
module Wl_gp = Into_gp.Wl_gp
module Mat = Into_linalg.Mat
module Wl = Into_graph.Wl
module Circuit_graph = Into_graph.Circuit_graph
module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Rng = Into_util.Rng

let check_close tol = Alcotest.(check (float tol))

(* --- Rbf --- *)

let test_rbf_bounds () =
  let a = [| 0.1; 0.2 |] and b = [| 0.9; 0.8 |] in
  check_close 1e-12 "self kernel" 1.0 (Rbf.kernel ~lengthscale:0.5 a a);
  let k = Rbf.kernel ~lengthscale:0.5 a b in
  Alcotest.(check bool) "in (0,1)" true (k > 0.0 && k < 1.0);
  Alcotest.(check bool) "shorter lengthscale decays faster" true
    (Rbf.kernel ~lengthscale:0.1 a b < k)

let test_rbf_gram () =
  let xs = [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |] |] in
  let g = Rbf.gram ~lengthscale:1.0 xs in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric g);
  check_close 1e-12 "unit diagonal" 1.0 (Mat.get g 1 1);
  check_close 1e-12 "cross matches kernel" (Rbf.kernel ~lengthscale:1.0 xs.(0) xs.(2))
    (Mat.get g 0 2)

let test_rbf_invalid () =
  match Rbf.kernel ~lengthscale:0.0 [| 1.0 |] [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero lengthscale accepted"

(* --- Gp --- *)

let fit_1d xs ys ~noise =
  let pts = Array.map (fun x -> [| x |]) xs in
  let gram = Rbf.gram ~lengthscale:0.5 pts in
  (Gp.fit ~gram ~y:ys ~signal:1.0 ~noise, pts)

let test_gp_interpolates () =
  let xs = [| 0.0; 0.5; 1.0; 1.5 |] in
  let ys = Array.map (fun x -> sin x) xs in
  let gp, pts = fit_1d xs ys ~noise:1e-8 in
  Array.iteri
    (fun i x ->
      let k_star = Rbf.cross ~lengthscale:0.5 pts [| x |] in
      let mean, var = Gp.predict gp ~k_star ~k_self:1.0 in
      check_close 1e-3 "mean interpolates" ys.(i) mean;
      Alcotest.(check bool) "small variance at data" true (var < 1e-4))
    xs

let test_gp_reverts_to_prior () =
  let xs = [| 0.0; 0.1 |] in
  let ys = [| 5.0; 5.2 |] in
  let gp, pts = fit_1d xs ys ~noise:1e-6 in
  let k_star = Rbf.cross ~lengthscale:0.5 pts [| 100.0 |] in
  let mean, var = Gp.predict gp ~k_star ~k_self:1.0 in
  (* Far away: mean reverts to the data mean, variance to the signal. *)
  check_close 1e-6 "prior mean" (Gp.y_mean gp) mean;
  Alcotest.(check bool) "large variance far away" true (var > 0.5 *. Gp.y_std gp ** 2.0)

let test_gp_lml_prefers_fitting_noise () =
  (* Noisy targets: a model with matching noise has a higher marginal
     likelihood than a near-interpolating one. *)
  let rng = Rng.create ~seed:21 in
  let xs = Array.init 20 (fun i -> float_of_int i /. 19.0) in
  let ys = Array.map (fun x -> x +. (0.5 *. Rng.gaussian rng)) xs in
  let noisy, _ = fit_1d xs ys ~noise:0.25 in
  let interp, _ = fit_1d xs ys ~noise:1e-8 in
  Alcotest.(check bool) "noise model wins" true
    (Gp.log_marginal_likelihood noisy > Gp.log_marginal_likelihood interp)

let test_gp_invalid_args () =
  let gram = Rbf.gram ~lengthscale:1.0 [| [| 0.0 |] |] in
  (match Gp.fit ~gram ~y:[||] ~signal:1.0 ~noise:1e-3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty data accepted");
  match Gp.fit ~gram ~y:[| 1.0 |] ~signal:(-1.0) ~noise:1e-3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative signal accepted"

let test_gp_variance_nonnegative () =
  let xs = [| 0.0; 1e-9 |] in
  (* Nearly duplicated points stress the numerics. *)
  let gp, pts = fit_1d xs [| 1.0; 1.0 |] ~noise:1e-6 in
  let k_star = Rbf.cross ~lengthscale:0.5 pts [| 0.0 |] in
  let _, var = Gp.predict gp ~k_star ~k_self:1.0 in
  Alcotest.(check bool) "variance >= 0" true (var >= 0.0)

(* --- Wl_gp --- *)

(* A synthetic learning problem on graphs: y counts the capacitors in the
   topology, so features containing capacitor labels must carry positive
   gradient. *)
let capacitor_count t =
  List.fold_left
    (fun acc slot ->
      match Topology.get t slot with
      | Subcircuit.Passive Subcircuit.Single_c -> acc + 1
      | _ -> acc)
    0 Topology.slots

let toy_dataset n seed =
  let rng = Rng.create ~seed in
  let topos = Array.init n (fun _ -> Topology.random rng) in
  let graphs = Array.map Circuit_graph.build topos in
  let y = Array.map (fun t -> float_of_int (capacitor_count t)) topos in
  (topos, graphs, y)

let test_wl_gp_fit_predict () =
  let _, graphs, y = toy_dataset 30 31 in
  let dict = Wl.create_dict () in
  let model = Wl_gp.fit ~dict ~graphs ~y () in
  Alcotest.(check bool) "h selected from candidates" true
    (List.mem (Wl_gp.h model) Wl_gp.default_h_candidates);
  (* Prediction at a training point is close for a smooth target. *)
  let mean, var = Wl_gp.predict model graphs.(0) in
  Alcotest.(check bool) "variance finite and nonnegative" true (var >= 0.0);
  Alcotest.(check bool) "prediction in data range" true (mean > -1.0 && mean < 6.0)

let test_wl_gp_learns_capacitors () =
  let topos, graphs, y = toy_dataset 40 32 in
  let dict = Wl.create_dict () in
  let model =
    Wl_gp.fit ~h_candidates:[ 0 ] ~noise_candidates:[ 1e-3 ] ~signal_candidates:[ 1.0 ]
      ~dict ~graphs ~y ()
  in
  (* Compare predictions for a low- vs high-capacitor topology. *)
  let with_c =
    Topology.make ~vin_v2:Subcircuit.No_conn ~vin_vout:Subcircuit.No_conn
      ~v1_vout:(Subcircuit.Passive Subcircuit.Single_c)
      ~v1_gnd:(Subcircuit.Passive Subcircuit.Single_c)
      ~v2_gnd:(Subcircuit.Passive Subcircuit.Single_c)
  in
  let without_c = Topology.of_index 0 in
  let m_hi, _ = Wl_gp.predict model (Circuit_graph.build with_c) in
  let m_lo, _ = Wl_gp.predict model (Circuit_graph.build without_c) in
  Alcotest.(check bool)
    (Printf.sprintf "more capacitors predict higher (%.2f > %.2f)" m_hi m_lo)
    true (m_hi > m_lo);
  ignore topos

let test_wl_gp_gradient_sign () =
  let _, graphs, y = toy_dataset 40 33 in
  let dict = Wl.create_dict () in
  let model =
    Wl_gp.fit ~h_candidates:[ 0 ] ~noise_candidates:[ 1e-3 ] ~signal_candidates:[ 1.0 ]
      ~dict ~graphs ~y ()
  in
  let probe =
    Topology.make ~vin_v2:Subcircuit.No_conn ~vin_vout:Subcircuit.No_conn
      ~v1_vout:(Subcircuit.Passive Subcircuit.Single_c)
      ~v1_gnd:(Subcircuit.Passive Subcircuit.Single_r)
      ~v2_gnd:Subcircuit.No_conn
  in
  let g = Circuit_graph.build probe in
  let rows = Wl.node_feature_ids dict ~h:0 g in
  let node_of label =
    let rec find i =
      if Into_graph.Labeled_graph.label g i = label then i else find (i + 1)
    in
    find 0
  in
  let grad_c = Wl_gp.feature_gradient model g ~feature_id:rows.(0).(node_of "C") in
  let grad_r = Wl_gp.feature_gradient model g ~feature_id:rows.(0).(node_of "R") in
  Alcotest.(check bool)
    (Printf.sprintf "capacitor feature gradient dominates (%.3f > %.3f)" grad_c grad_r)
    true (grad_c > grad_r)

let test_wl_gp_present_gradients () =
  let _, graphs, y = toy_dataset 15 34 in
  let dict = Wl.create_dict () in
  let model = Wl_gp.fit ~dict ~graphs ~y () in
  let grads = Wl_gp.present_feature_gradients model graphs.(3) in
  let feats = Wl.to_list (Wl_gp.features_of model graphs.(3)) in
  Alcotest.(check int) "one gradient per present feature" (List.length feats)
    (List.length grads)

let test_wl_gp_rejects_empty () =
  let dict = Wl.create_dict () in
  match Wl_gp.fit ~dict ~graphs:[||] ~y:[||] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty data accepted"

let test_wl_gp_single_point () =
  (* One observation: degenerate but must not crash (used early in BO). *)
  let dict = Wl.create_dict () in
  let g = Circuit_graph.build (Topology.nmc ()) in
  let model = Wl_gp.fit ~dict ~graphs:[| g |] ~y:[| 3.0 |] () in
  let mean, _ = Wl_gp.predict model g in
  check_close 0.5 "predicts the sole observation" 3.0 mean


(* --- additional edge cases --- *)

let prop_rbf_gram_psd =
  QCheck.Test.make ~name:"rbf gram is positive semidefinite" ~count:50
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let xs = Array.init n (fun _ -> Array.init 3 (fun _ -> Rng.float rng)) in
      let gram = Rbf.gram ~lengthscale:0.7 xs in
      match Into_linalg.Cholesky.decompose_with_jitter gram with
      | _ -> true
      | exception Into_linalg.Cholesky.Not_positive_definite -> false)

let test_predict_dimension_mismatch () =
  let gp, _ = fit_1d [| 0.0; 1.0 |] [| 0.0; 1.0 |] ~noise:1e-3 in
  match Gp.predict gp ~k_star:[| 1.0 |] ~k_self:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong k_star length accepted"

let test_wl_gp_fixed_h_respected () =
  let _, graphs, y = toy_dataset 12 77 in
  let dict = Wl.create_dict () in
  let m0 = Wl_gp.fit ~h_candidates:[ 0 ] ~dict ~graphs ~y () in
  let m2 = Wl_gp.fit ~h_candidates:[ 2 ] ~dict ~graphs ~y () in
  Alcotest.(check int) "h forced to 0" 0 (Wl_gp.h m0);
  Alcotest.(check int) "h forced to 2" 2 (Wl_gp.h m2)

let test_wl_gp_deterministic () =
  let _, graphs, y = toy_dataset 15 78 in
  let fit () =
    let dict = Wl.create_dict () in
    let m = Wl_gp.fit ~dict ~graphs ~y () in
    Wl_gp.predict m graphs.(0)
  in
  let a1, v1 = fit () and a2, v2 = fit () in
  Alcotest.(check (float 1e-12)) "same mean" a1 a2;
  Alcotest.(check (float 1e-12)) "same variance" v1 v2

let () =
  Alcotest.run "into_gp"
    [
      ( "rbf",
        [
          Alcotest.test_case "bounds" `Quick test_rbf_bounds;
          Alcotest.test_case "gram" `Quick test_rbf_gram;
          Alcotest.test_case "invalid lengthscale" `Quick test_rbf_invalid;
          QCheck_alcotest.to_alcotest prop_rbf_gram_psd;
        ] );
      ( "gp",
        [
          Alcotest.test_case "interpolates noiseless data" `Quick test_gp_interpolates;
          Alcotest.test_case "reverts to prior far away" `Quick test_gp_reverts_to_prior;
          Alcotest.test_case "lml model selection" `Quick test_gp_lml_prefers_fitting_noise;
          Alcotest.test_case "invalid arguments" `Quick test_gp_invalid_args;
          Alcotest.test_case "variance clamped" `Quick test_gp_variance_nonnegative;
          Alcotest.test_case "k_star dimension check" `Quick test_predict_dimension_mismatch;
        ] );
      ( "wl_gp",
        [
          Alcotest.test_case "fit and predict" `Quick test_wl_gp_fit_predict;
          Alcotest.test_case "learns capacitor counting" `Quick test_wl_gp_learns_capacitors;
          Alcotest.test_case "gradient sign (Eq. 5)" `Quick test_wl_gp_gradient_sign;
          Alcotest.test_case "gradients for present features" `Quick test_wl_gp_present_gradients;
          Alcotest.test_case "rejects empty data" `Quick test_wl_gp_rejects_empty;
          Alcotest.test_case "single observation" `Quick test_wl_gp_single_point;
          Alcotest.test_case "fixed h respected" `Quick test_wl_gp_fixed_h_respected;
          Alcotest.test_case "deterministic fit" `Quick test_wl_gp_deterministic;
        ] );
    ]
