test/test_util.ml: Alcotest Array Float Gen Into_util List QCheck QCheck_alcotest String
