test/test_circuit.ml: Alcotest Array Complex Float Into_circuit Into_util List Printf QCheck QCheck_alcotest String
