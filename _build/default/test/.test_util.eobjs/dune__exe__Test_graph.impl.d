test/test_graph.ml: Alcotest Array Float Into_circuit Into_graph Into_linalg Into_util List QCheck QCheck_alcotest
