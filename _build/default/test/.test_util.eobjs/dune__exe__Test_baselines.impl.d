test/test_baselines.ml: Alcotest Array Float Into_baselines Into_circuit Into_core Into_util List Option QCheck QCheck_alcotest
