test/test_analysis.ml: Alcotest Complex Float Into_circuit Into_core Into_util Lazy List QCheck QCheck_alcotest String
