test/test_core.ml: Alcotest Array Float Hashtbl Into_circuit Into_core Into_util List Option QCheck QCheck_alcotest String
