test/test_transistor.ml: Alcotest Array Float Into_circuit Into_transistor List QCheck QCheck_alcotest String
