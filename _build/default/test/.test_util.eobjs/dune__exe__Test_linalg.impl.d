test/test_linalg.ml: Alcotest Array Complex Float Gen Into_linalg List Printf QCheck QCheck_alcotest
