test/test_experiments.ml: Alcotest Array Float Hashtbl Into_circuit Into_core Into_experiments Into_util Lazy List Option String Unix
