test/test_gp.ml: Alcotest Array Into_circuit Into_gp Into_graph Into_linalg Into_util List Printf QCheck QCheck_alcotest
