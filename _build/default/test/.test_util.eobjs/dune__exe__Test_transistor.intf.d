test/test_transistor.mli:
