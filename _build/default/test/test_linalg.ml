(* Unit and property tests for Into_linalg: vectors, matrices, Cholesky,
   real LU and complex LU. *)

module Vec = Into_linalg.Vec
module Mat = Into_linalg.Mat
module Cholesky = Into_linalg.Cholesky
module Lu = Into_linalg.Lu
module Cmat = Into_linalg.Cmat

let check_close tol = Alcotest.(check (float tol))

(* Random SPD matrix A = B^T B + I from a flat list of entries. *)
let spd_of_entries n entries =
  let b = Mat.init n n (fun i j -> List.nth entries ((i * n) + j)) in
  Mat.add_diagonal (Mat.mul (Mat.transpose b) b) 1.0

let entries_gen n =
  QCheck.(list_of_size (Gen.return (n * n)) (float_range (-2.0) 2.0))

let vec_gen n = QCheck.(list_of_size (Gen.return n) (float_range (-5.0) 5.0))

(* --- Vec --- *)

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  check_close 1e-12 "dot" 32.0 (Vec.dot a b);
  check_close 1e-12 "norm2" (sqrt 14.0) (Vec.norm2 a);
  Alcotest.(check (array (float 1e-12))) "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 a);
  let y = Array.copy b in
  Vec.axpy 2.0 a y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.0; 9.0; 12.0 |] y;
  check_close 1e-12 "max_abs_diff" 3.0 (Vec.max_abs_diff a b);
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec: dimension mismatch")
    (fun () -> ignore (Vec.dot a [| 1.0 |]))

(* --- Mat --- *)

let test_mat_basics () =
  let m = Mat.init 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 3 (Mat.cols m);
  check_close 1e-12 "get" 5.0 (Mat.get m 1 2);
  let t = Mat.transpose m in
  check_close 1e-12 "transpose" 5.0 (Mat.get t 2 1);
  let i3 = Mat.identity 3 in
  check_close 1e-12 "identity mul" 0.0 (Mat.max_abs_diff (Mat.mul m i3) m);
  let v = Mat.mul_vec m [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "mul_vec" [| 3.0; 12.0 |] v

let test_mat_symmetric () =
  let s = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric s);
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 0.0; 3.0 |] |] in
  Alcotest.(check bool) "asymmetric" false (Mat.is_symmetric a)

let test_add_diagonal () =
  let m = Mat.identity 2 in
  let j = Mat.add_diagonal m 0.5 in
  check_close 1e-12 "diagonal bumped" 1.5 (Mat.get j 0 0);
  check_close 1e-12 "original untouched" 1.0 (Mat.get m 0 0)

(* --- Cholesky --- *)

let prop_cholesky_reconstruction =
  QCheck.Test.make ~name:"cholesky: L L^T = A" ~count:50 (entries_gen 4)
    (fun entries ->
      QCheck.assume (List.length entries = 16);
      let a = spd_of_entries 4 entries in
      let ch = Cholesky.decompose a in
      let l = Cholesky.lower ch in
      Mat.max_abs_diff (Mat.mul l (Mat.transpose l)) a < 1e-8)

let prop_cholesky_solve =
  QCheck.Test.make ~name:"cholesky: A x = b round trip" ~count:50
    QCheck.(pair (entries_gen 4) (vec_gen 4))
    (fun (entries, b) ->
      QCheck.assume (List.length entries = 16 && List.length b = 4);
      let a = spd_of_entries 4 entries in
      let x = Cholesky.solve (Cholesky.decompose a) (Array.of_list b) in
      Vec.max_abs_diff (Mat.mul_vec a x) (Array.of_list b) < 1e-7)

let test_cholesky_not_pd () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "indefinite rejected" Cholesky.Not_positive_definite (fun () ->
      ignore (Cholesky.decompose a))

let test_cholesky_jitter () =
  (* Rank-deficient PSD matrix: jitter must rescue it. *)
  let a = Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let _, jitter = Cholesky.decompose_with_jitter a in
  Alcotest.(check bool) "jitter applied" true (jitter > 0.0);
  let good = Mat.identity 3 in
  let _, j2 = Cholesky.decompose_with_jitter good in
  check_close 1e-15 "no jitter when PD" 0.0 j2

let test_cholesky_logdet () =
  let a = Mat.of_rows [| [| 4.0; 0.0 |]; [| 0.0; 9.0 |] |] in
  check_close 1e-10 "log det" (log 36.0) (Cholesky.log_det (Cholesky.decompose a))

(* --- LU --- *)

let prop_lu_solve =
  QCheck.Test.make ~name:"lu: A x = b round trip" ~count:50
    QCheck.(pair (entries_gen 4) (vec_gen 4))
    (fun (entries, b) ->
      QCheck.assume (List.length entries = 16 && List.length b = 4);
      let a = Mat.add_diagonal (Mat.init 4 4 (fun i j -> List.nth entries ((i * 4) + j))) 5.0 in
      let x = Lu.solve_system a (Array.of_list b) in
      Vec.max_abs_diff (Mat.mul_vec a x) (Array.of_list b) < 1e-7)

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular rejected" Lu.Singular (fun () ->
      ignore (Lu.decompose a))

let test_lu_det () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  check_close 1e-10 "det" 5.0 (Lu.det (Lu.decompose a));
  (* Permuted rows flip the determinant's sign relative to the original. *)
  let p = Mat.of_rows [| [| 1.0; 3.0 |]; [| 2.0; 1.0 |] |] in
  check_close 1e-10 "det permuted" (-5.0) (Lu.det (Lu.decompose p))

(* --- Cmat --- *)

let cx re im = { Complex.re; im }

let test_cmat_stamp () =
  let m = Cmat.create 2 2 in
  Cmat.add_entry m 0 0 (cx 1.0 0.0);
  Cmat.add_entry m 0 0 (cx 0.5 2.0);
  let v = Cmat.get m 0 0 in
  check_close 1e-12 "accumulated re" 1.5 v.Complex.re;
  check_close 1e-12 "accumulated im" 2.0 v.Complex.im

let prop_cmat_solve =
  QCheck.Test.make ~name:"cmat: A x = b round trip" ~count:50
    QCheck.(list_of_size (Gen.return 24) (float_range (-2.0) 2.0))
    (fun entries ->
      QCheck.assume (List.length entries = 24);
      let n = 3 in
      let a = Cmat.create n n in
      List.iteri
        (fun k v ->
          let idx = k / 2 in
          if idx < n * n then
            let i = idx / n and j = idx mod n in
            let cur = Cmat.get a i j in
            if k mod 2 = 0 then Cmat.set a i j { cur with Complex.re = v }
            else Cmat.set a i j { cur with Complex.im = v })
        entries;
      for i = 0 to n - 1 do
        Cmat.add_entry a i i (cx 10.0 0.0)
      done;
      let b = Array.init n (fun i -> cx (float_of_int (i + 1)) (-1.0)) in
      let x = Cmat.solve a b in
      let r = Cmat.mul_vec a x in
      Array.for_all2 (fun u v -> Complex.norm (Complex.sub u v) < 1e-8) r b)

let test_cmat_singular () =
  let a = Cmat.create 2 2 in
  Cmat.set a 0 0 (cx 1.0 0.0);
  Cmat.set a 0 1 (cx 2.0 0.0);
  Cmat.set a 1 0 (cx 2.0 0.0);
  Cmat.set a 1 1 (cx 4.0 0.0);
  Alcotest.check_raises "singular" Cmat.Singular (fun () ->
      ignore (Cmat.solve a [| Complex.one; Complex.one |]))


(* --- Eig --- *)

let test_eig_triangular () =
  (* Eigenvalues of a triangular matrix are its diagonal. *)
  let n = 4 in
  let m = Cmat.create n n in
  let diag = [| cx 1.0 0.0; cx 2.0 1.0; cx (-3.0) 0.5; cx 0.1 (-2.0) |] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i = j then Cmat.set m i j diag.(i)
      else if j > i then Cmat.set m i j (cx (float_of_int ((i * n) + j)) 0.7)
    done
  done;
  let eigs = Array.to_list (Into_linalg.Eig.eigenvalues m) in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "diagonal entry found" true
        (List.exists (fun e -> Complex.norm (Complex.sub e d) < 1e-8) eigs))
    diag

let test_eig_companion () =
  (* Companion matrix of (x-1)(x-2)(x-3). *)
  let c = Mat.of_rows [| [| 6.0; -11.0; 6.0 |]; [| 1.0; 0.0; 0.0 |]; [| 0.0; 1.0; 0.0 |] |] in
  let eigs = Array.to_list (Into_linalg.Eig.eigenvalues_real c) in
  List.iter
    (fun root ->
      Alcotest.(check bool)
        (Printf.sprintf "root %g recovered" root)
        true
        (List.exists (fun e -> Complex.norm (Complex.sub e (cx root 0.0)) < 1e-7) eigs))
    [ 1.0; 2.0; 3.0 ]

let test_eig_complex_pair () =
  (* Rotation-like matrix: eigenvalues a +- bj. *)
  let a = 0.3 and b = 2.5 in
  let m = Mat.of_rows [| [| a; -.b |]; [| b; a |] |] in
  let eigs = Into_linalg.Eig.eigenvalues_real m in
  Alcotest.(check int) "two eigenvalues" 2 (Array.length eigs);
  Array.iter
    (fun e ->
      check_close 1e-8 "real part" a e.Complex.re;
      check_close 1e-8 "imaginary magnitude" b (Float.abs e.Complex.im))
    eigs

let prop_eig_trace =
  QCheck.Test.make ~name:"sum of eigenvalues equals the trace" ~count:50
    (entries_gen 5)
    (fun entries ->
      QCheck.assume (List.length entries = 25);
      let m = Mat.init 5 5 (fun i j -> List.nth entries ((i * 5) + j)) in
      match Into_linalg.Eig.eigenvalues_real m with
      | eigs ->
        let sum = Array.fold_left Complex.add Complex.zero eigs in
        let trace = ref 0.0 in
        for i = 0 to 4 do
          trace := !trace +. Mat.get m i i
        done;
        Complex.norm (Complex.sub sum (cx !trace 0.0)) < 1e-6
      | exception Into_linalg.Eig.No_convergence -> QCheck.assume_fail ())

let test_eig_empty_and_invalid () =
  Alcotest.(check int) "empty matrix" 0
    (Array.length (Into_linalg.Eig.eigenvalues (Cmat.create 0 0)));
  match Into_linalg.Eig.eigenvalues (Cmat.create 2 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-square accepted"

let () =
  Alcotest.run "into_linalg"
    [
      ("vec", [ Alcotest.test_case "operations" `Quick test_vec_ops ]);
      ( "mat",
        [
          Alcotest.test_case "basics" `Quick test_mat_basics;
          Alcotest.test_case "symmetry check" `Quick test_mat_symmetric;
          Alcotest.test_case "add_diagonal" `Quick test_add_diagonal;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "rejects indefinite" `Quick test_cholesky_not_pd;
          Alcotest.test_case "jitter fallback" `Quick test_cholesky_jitter;
          Alcotest.test_case "log det" `Quick test_cholesky_logdet;
          QCheck_alcotest.to_alcotest prop_cholesky_reconstruction;
          QCheck_alcotest.to_alcotest prop_cholesky_solve;
        ] );
      ( "lu",
        [
          Alcotest.test_case "rejects singular" `Quick test_lu_singular;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          QCheck_alcotest.to_alcotest prop_lu_solve;
        ] );
      ( "eig",
        [
          Alcotest.test_case "triangular" `Quick test_eig_triangular;
          Alcotest.test_case "companion roots" `Quick test_eig_companion;
          Alcotest.test_case "complex pair" `Quick test_eig_complex_pair;
          Alcotest.test_case "empty/invalid" `Quick test_eig_empty_and_invalid;
          QCheck_alcotest.to_alcotest prop_eig_trace;
        ] );
      ( "cmat",
        [
          Alcotest.test_case "stamping" `Quick test_cmat_stamp;
          Alcotest.test_case "rejects singular" `Quick test_cmat_singular;
          QCheck_alcotest.to_alcotest prop_cmat_solve;
        ] );
    ]
