(* Unit and property tests for Into_util: PRNG, sampling, statistics and
   table rendering. *)

module Rng = Into_util.Rng
module Splitmix = Into_util.Splitmix
module Stats = Into_util.Stats
module Table = Into_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* --- Splitmix --- *)

let test_determinism () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Splitmix.create 1 and b = Splitmix.create 2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Splitmix.next_int64 a <> Splitmix.next_int64 b then distinct := true
  done;
  Alcotest.(check bool) "streams differ" true !distinct

let test_split_independence () =
  let parent = Splitmix.create 7 in
  let child = Splitmix.split parent in
  let c1 = Splitmix.next_int64 child and p1 = Splitmix.next_int64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_copy () =
  let a = Splitmix.create 9 in
  ignore (Splitmix.next_int64 a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues identically" (Splitmix.next_int64 a)
    (Splitmix.next_int64 b)

let test_float_range () =
  let g = Splitmix.create 3 in
  for _ = 1 to 1000 do
    let f = Splitmix.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_int_range () =
  let g = Splitmix.create 4 in
  for _ = 1 to 1000 do
    let v = Splitmix.int g 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

(* --- Rng --- *)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:11 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng) in
  check_close 0.05 "mean near 0" 0.0 (Stats.mean xs);
  check_close 0.05 "std near 1" 1.0 (Stats.std xs)

let test_log_uniform () =
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 200 do
    let v = Rng.log_uniform rng ~lo:1e-6 ~hi:1e-2 in
    Alcotest.(check bool) "in range" true (v >= 1e-6 && v <= 1e-2)
  done

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_distinct () =
  let rng = Rng.create ~seed:14 in
  let s = Rng.sample_distinct rng 10 100 in
  Alcotest.(check int) "ten values" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  let s2 = Rng.sample_distinct rng 10 5 in
  Alcotest.(check int) "clamped to population" 5 (List.length s2)

let test_choice () =
  let rng = Rng.create ~seed:15 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choice rng a) a)
  done;
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.choice_list: empty list")
    (fun () -> ignore (Rng.choice_list rng []))

(* --- Stats --- *)

let test_mean_std () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "std" 1.0 (Stats.std [ 1.0; 2.0; 3.0 ]);
  check_float "std singleton" 0.0 (Stats.std [ 5.0 ])

let test_median_percentile () =
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 1.5 (Stats.median [ 1.0; 2.0 ]);
  check_float "p0" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  check_float "p100" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ]);
  check_float "p50 interpolated" 2.0 (Stats.percentile 50.0 [ 1.0; 2.0; 3.0 ])

let test_min_max_geomean () =
  let lo, hi = Stats.min_max [ 3.0; 1.0; 2.0 ] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi;
  check_close 1e-9 "geometric mean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0; 2.0 ])

let test_normalize () =
  let z, mu, sigma = Stats.normalize [| 2.0; 4.0; 6.0 |] in
  check_float "mu" 4.0 mu;
  check_float "sigma" 2.0 sigma;
  check_float "z0" (-1.0) z.(0);
  let z2, _, sigma2 = Stats.normalize [| 5.0; 5.0 |] in
  check_float "constant data sigma forced to 1" 1.0 sigma2;
  check_float "constant data centered" 0.0 z2.(0)

let test_erf_cdf () =
  check_close 1e-6 "erf 0" 0.0 (Stats.erf 0.0);
  check_close 1e-5 "erf 1" 0.8427008 (Stats.erf 1.0);
  check_close 1e-9 "odd function" 0.0 (Stats.erf 0.7 +. Stats.erf (-0.7));
  check_close 1e-9 "cdf 0" 0.5 (Stats.normal_cdf 0.0);
  check_close 1e-4 "cdf 1.96" 0.975 (Stats.normal_cdf 1.96);
  check_close 1e-9 "pdf peak" (1.0 /. sqrt (2.0 *. Float.pi)) (Stats.normal_pdf 0.0)

(* --- Table --- *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "1" ]; [ "y"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check int) "equal width" (String.length (List.nth lines 0)) (String.length l))
    lines

let test_table_formats () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "digits" "3.1416" (Table.fmt_float ~digits:4 3.14159);
  Alcotest.(check string) "ratio" "2.50x" (Table.fmt_ratio 2.5)

(* --- properties --- *)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile stays within data bounds" ~count:200
    QCheck.(pair (float_range 0.0 100.0) (list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      let lo, hi = Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_normalize_standardizes =
  QCheck.Test.make ~name:"normalize yields zero mean unit std" ~count:100
    QCheck.(list_of_size (Gen.int_range 3 30) (float_range (-1000.) 1000.))
    (fun xs ->
      QCheck.assume (Stats.std xs > 1e-6);
      let z, _, _ = Stats.normalize (Array.of_list xs) in
      let zl = Array.to_list z in
      Float.abs (Stats.mean zl) < 1e-6 && Float.abs (Stats.std zl -. 1.0) < 1e-6)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"normal cdf is monotone" ~count:200
    QCheck.(pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Stats.normal_cdf lo <= Stats.normal_cdf hi +. 1e-12)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int respects bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)


let test_pearson_spearman () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close 1e-9 "perfect linear" 1.0 (Stats.pearson x [| 2.0; 4.0; 6.0; 8.0 |]);
  check_close 1e-9 "perfect inverse" (-1.0) (Stats.pearson x [| 8.0; 6.0; 4.0; 2.0 |]);
  check_close 1e-9 "constant side" 0.0 (Stats.pearson x [| 5.0; 5.0; 5.0; 5.0 |]);
  (* Spearman sees through monotone nonlinearity. *)
  check_close 1e-9 "monotone nonlinear" 1.0 (Stats.spearman x [| 1.0; 8.0; 27.0; 64.0 |]);
  check_close 1e-9 "anti-monotone" (-1.0) (Stats.spearman x [| 0.0; -1.0; -5.0; -9.0 |])

let prop_correlation_bounded =
  QCheck.Test.make ~name:"correlations live in [-1, 1]" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 2 15) (float_range (-10.) 10.))
              (list_of_size (Gen.int_range 2 15) (float_range (-10.) 10.)))
    (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      QCheck.assume (n >= 2);
      let take l = Array.of_list (List.filteri (fun i _ -> i < n) l) in
      let p = Stats.pearson (take a) (take b) and s = Stats.spearman (take a) (take b) in
      Float.abs p <= 1.0 +. 1e-9 && Float.abs s <= 1.0 +. 1e-9)

(* --- Ascii_plot --- *)

let test_plot_renders () =
  let s =
    Into_util.Ascii_plot.plot ~width:30 ~height:8
      [ ("a", [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ]); ("b", [ (0.0, 4.0); (2.0, 0.0) ]) ]
  in
  Alcotest.(check bool) "marker a present" true (String.contains s '*');
  Alcotest.(check bool) "marker b present" true (String.contains s '+');
  Alcotest.(check bool) "legend present" true
    (List.exists (fun l -> l = "  * a") (String.split_on_char '\n' s))

let test_plot_empty () =
  Alcotest.(check string) "no data" "(no data)" (Into_util.Ascii_plot.plot []);
  Alcotest.(check string) "nan filtered" "(no data)"
    (Into_util.Ascii_plot.plot [ ("x", [ (Float.nan, 1.0) ]) ])

let test_plot_log_x () =
  let s =
    Into_util.Ascii_plot.plot ~log_x:true
      [ ("curve", [ (-1.0, 5.0); (1.0, 0.0); (1e6, 1.0) ]) ]
  in
  (* The negative-x point is dropped, the range annotation shows the decade span. *)
  Alcotest.(check bool) "log annotation" true
    (let rec contains i =
       i + 5 <= String.length s && (String.sub s i 5 = "(log)" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "into_util"
    [
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "int range" `Quick test_int_range;
        ] );
      ( "rng",
        [
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "log uniform" `Quick test_log_uniform;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
          Alcotest.test_case "choice" `Quick test_choice;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/std" `Quick test_mean_std;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "min-max/geomean" `Quick test_min_max_geomean;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "erf/cdf/pdf" `Quick test_erf_cdf;
          Alcotest.test_case "pearson/spearman" `Quick test_pearson_spearman;
          QCheck_alcotest.to_alcotest prop_correlation_bounded;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "renders series" `Quick test_plot_renders;
          Alcotest.test_case "empty input" `Quick test_plot_empty;
          Alcotest.test_case "log axis" `Quick test_plot_log_x;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_percentile_bounded;
            prop_normalize_standardizes;
            prop_cdf_monotone;
            prop_rng_int_range;
          ] );
    ]
