(* Tests for Into_graph: labeled graphs, the circuit-graph construction of
   Section III-A, WL feature extraction and the WL kernel. *)

module Labeled_graph = Into_graph.Labeled_graph
module Circuit_graph = Into_graph.Circuit_graph
module Wl = Into_graph.Wl
module Wl_kernel = Into_graph.Wl_kernel
module Topology = Into_circuit.Topology
module Subcircuit = Into_circuit.Subcircuit
module Rng = Into_util.Rng

let check_close tol = Alcotest.(check (float tol))

let triangle () =
  Labeled_graph.create ~labels:[| "a"; "b"; "c" |] ~edges:[ (0, 1); (1, 2); (2, 0) ]

(* --- Labeled_graph --- *)

let test_graph_basics () =
  let g = triangle () in
  Alcotest.(check int) "nodes" 3 (Labeled_graph.n_nodes g);
  Alcotest.(check int) "edges" 3 (Labeled_graph.n_edges g);
  Alcotest.(check string) "label" "b" (Labeled_graph.label g 1);
  Alcotest.(check (list int)) "neighbors sorted" [ 0; 2 ] (Labeled_graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Labeled_graph.degree g 0);
  Alcotest.(check bool) "has_edge both ways" true
    (Labeled_graph.has_edge g 2 0 && Labeled_graph.has_edge g 0 2)

let test_graph_validation () =
  let mk edges () = ignore (Labeled_graph.create ~labels:[| "a"; "b" |] ~edges) in
  List.iter
    (fun (name, edges) ->
      match mk edges () with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail name)
    [
      ("self loop accepted", [ (0, 0) ]);
      ("duplicate accepted", [ (0, 1); (1, 0) ]);
      ("out of range accepted", [ (0, 5) ]);
    ]

let test_graph_isolated_node () =
  let g = Labeled_graph.create ~labels:[| "a"; "b" |] ~edges:[] in
  Alcotest.(check int) "no edges" 0 (Labeled_graph.n_edges g);
  Alcotest.(check (list int)) "isolated" [] (Labeled_graph.neighbors g 0)

(* --- Circuit_graph --- *)

let test_circuit_graph_bare () =
  let g = Circuit_graph.build (Topology.of_index 0) in
  Alcotest.(check int) "8 nodes" 8 (Labeled_graph.n_nodes g);
  Alcotest.(check int) "6 edges" 6 (Labeled_graph.n_edges g)

let test_circuit_graph_full () =
  (* Every slot connected: 13 nodes, 16 edges - the paper's n<=13, m<=16. *)
  let t =
    Topology.make
      ~vin_v2:(Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))
      ~vin_vout:(Subcircuit.Gm (Subcircuit.Plus, Subcircuit.Forward))
      ~v1_vout:(Subcircuit.Passive (Subcircuit.Rc Subcircuit.Series))
      ~v1_gnd:(Subcircuit.Passive Subcircuit.Single_c)
      ~v2_gnd:(Subcircuit.Passive Subcircuit.Single_r)
  in
  let g = Circuit_graph.build t in
  Alcotest.(check int) "13 nodes" 13 (Labeled_graph.n_nodes g);
  Alcotest.(check int) "16 edges" 16 (Labeled_graph.n_edges g)

let prop_circuit_graph_size =
  QCheck.Test.make ~name:"circuit graph size matches connected slots" ~count:300
    QCheck.(int_range 0 (Topology.space_size - 1))
    (fun idx ->
      let t = Topology.of_index idx in
      let connected =
        List.length
          (List.filter
             (fun s -> not (Subcircuit.equal (Topology.get t s) Subcircuit.No_conn))
             Topology.slots)
      in
      let g = Circuit_graph.build t in
      Labeled_graph.n_nodes g = 8 + connected
      && Labeled_graph.n_edges g = 6 + (2 * connected))

let test_slot_node () =
  let t = Topology.nmc () in
  (match Circuit_graph.slot_node t Topology.V1_vout with
  | Some n ->
    Alcotest.(check string) "slot node label" "RCs" (Labeled_graph.label (Circuit_graph.build t) n)
  | None -> Alcotest.fail "connected slot should have a node");
  Alcotest.(check bool) "unconnected slot has no node" true
    (Circuit_graph.slot_node t Topology.V1_gnd = None)

let test_origins () =
  let t = Topology.nmc () in
  let origins = Circuit_graph.origins t in
  Alcotest.(check int) "origins parallel to nodes"
    (Labeled_graph.n_nodes (Circuit_graph.build t))
    (Array.length origins);
  (match origins.(0) with
  | Circuit_graph.Circuit_node n -> Alcotest.(check string) "vin first" "vin" n
  | Circuit_graph.Fixed_stage _ | Circuit_graph.Variable_slot _ ->
    Alcotest.fail "node 0 should be a circuit node");
  match origins.(8) with
  | Circuit_graph.Variable_slot s ->
    Alcotest.(check string) "slot origin" "v1-vout" (Topology.slot_name s)
  | Circuit_graph.Circuit_node _ | Circuit_graph.Fixed_stage _ ->
    Alcotest.fail "node 8 should be the variable slot"

(* --- WL features --- *)

let test_wl_h0_counts () =
  let dict = Wl.create_dict () in
  let f = Wl.extract dict ~h:0 (triangle ()) in
  Alcotest.(check int) "three features" 3 (List.length (Wl.to_list f));
  List.iter (fun (_, c) -> Alcotest.(check int) "count 1" 1 c) (Wl.to_list f)

let test_wl_total_counts () =
  (* Every node contributes exactly one feature per iteration. *)
  let dict = Wl.create_dict () in
  let g = Circuit_graph.build (Topology.nmc ()) in
  let h = 2 in
  let f = Wl.extract dict ~h g in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Wl.to_list f) in
  Alcotest.(check int) "total = (h+1) * n" ((h + 1) * Labeled_graph.n_nodes g) total

let test_wl_node_feature_ids () =
  let dict = Wl.create_dict () in
  let g = triangle () in
  let rows = Wl.node_feature_ids dict ~h:2 g in
  Alcotest.(check int) "h+1 rows" 3 (Array.length rows);
  Array.iter (fun row -> Alcotest.(check int) "row per node" 3 (Array.length row)) rows;
  Alcotest.(check int) "iteration of base" 0 (Wl.feature_iteration dict rows.(0).(0));
  Alcotest.(check int) "iteration of refined" 2 (Wl.feature_iteration dict rows.(2).(0))

let test_wl_describe () =
  let dict = Wl.create_dict () in
  let g = Labeled_graph.create ~labels:[| "x"; "y"; "z" |] ~edges:[ (0, 1); (0, 2) ] in
  let rows = Wl.node_feature_ids dict ~h:1 g in
  Alcotest.(check string) "base describe" "x" (Wl.describe dict rows.(0).(0));
  Alcotest.(check string) "composed describe" "x(y, z)" (Wl.describe dict rows.(1).(0))

let test_wl_dict_sharing () =
  let dict = Wl.create_dict () in
  let f1 = Wl.extract dict ~h:1 (triangle ()) in
  let f2 = Wl.extract dict ~h:1 (triangle ()) in
  Alcotest.(check bool) "identical features" true (Wl.to_list f1 = Wl.to_list f2)

let test_wl_count_lookup () =
  let dict = Wl.create_dict () in
  let g = Circuit_graph.build (Topology.of_index 0) in
  let f = Wl.extract dict ~h:1 g in
  List.iter
    (fun (id, c) -> Alcotest.(check int) "binary search agrees" c (Wl.count f id))
    (Wl.to_list f);
  Alcotest.(check int) "absent feature" 0 (Wl.count f 999999)

(* --- WL kernel --- *)

let random_topo seed = Topology.of_index (Rng.int (Rng.create ~seed) Topology.space_size)

let prop_kernel_symmetric =
  QCheck.Test.make ~name:"wl kernel is symmetric" ~count:100
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let dict = Wl.create_dict () in
      let f1 = Wl.extract dict ~h:2 (Circuit_graph.build (random_topo s1)) in
      let f2 = Wl.extract dict ~h:2 (Circuit_graph.build (random_topo s2)) in
      Wl_kernel.kernel f1 f2 = Wl_kernel.kernel f2 f1)

let prop_kernel_normalized_bounds =
  QCheck.Test.make ~name:"normalized kernel in [0,1], self = 1" ~count:100
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let dict = Wl.create_dict () in
      let f1 = Wl.extract dict ~h:2 (Circuit_graph.build (random_topo s1)) in
      let f2 = Wl.extract dict ~h:2 (Circuit_graph.build (random_topo s2)) in
      let k = Wl_kernel.normalized f1 f2 in
      k >= 0.0 && k <= 1.0 +. 1e-12 && Float.abs (Wl_kernel.normalized f1 f1 -. 1.0) < 1e-12)

let prop_gram_psd =
  QCheck.Test.make ~name:"wl gram matrix is positive semidefinite" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let dict = Wl.create_dict () in
      let feats =
        Array.init 8 (fun _ ->
            Wl.extract dict ~h:1 (Circuit_graph.build (Topology.random rng)))
      in
      let gram = Wl_kernel.gram feats in
      match Into_linalg.Cholesky.decompose_with_jitter gram with
      | _ -> true
      | exception Into_linalg.Cholesky.Not_positive_definite -> false)

let test_kernel_discriminates () =
  let dict = Wl.create_dict () in
  let t1 = Topology.nmc () in
  let t2 = Topology.set t1 Topology.V1_gnd (Subcircuit.Passive Subcircuit.Single_c) in
  let f1 = Wl.extract dict ~h:1 (Circuit_graph.build t1) in
  let f2 = Wl.extract dict ~h:1 (Circuit_graph.build t2) in
  Alcotest.(check bool) "different topologies, kernel < 1" true
    (Wl_kernel.normalized f1 f2 < 1.0 -. 1e-9)

let test_gm_direction_distinguished () =
  (* Forward and backward transconductors must not collapse (undirected
     graph, so the label carries the orientation). *)
  let mk dir =
    Topology.make ~vin_v2:Subcircuit.No_conn ~vin_vout:Subcircuit.No_conn
      ~v1_vout:(Subcircuit.Gm (Subcircuit.Minus, dir))
      ~v1_gnd:Subcircuit.No_conn ~v2_gnd:Subcircuit.No_conn
  in
  let dict = Wl.create_dict () in
  let ff = Wl.extract dict ~h:0 (Circuit_graph.build (mk Subcircuit.Forward)) in
  let fb = Wl.extract dict ~h:0 (Circuit_graph.build (mk Subcircuit.Backward)) in
  Alcotest.(check bool) "directions differ" true (Wl.to_list ff <> Wl.to_list fb)

let test_cross () =
  let dict = Wl.create_dict () in
  let feats =
    Array.init 4 (fun i -> Wl.extract dict ~h:1 (Circuit_graph.build (random_topo i)))
  in
  let q = feats.(2) in
  let ks = Wl_kernel.cross feats q in
  Alcotest.(check int) "length" 4 (Array.length ks);
  check_close 1e-12 "self entry is 1" 1.0 ks.(2)


let test_dict_growth () =
  let dict = Wl.create_dict () in
  Alcotest.(check int) "empty dict" 0 (Wl.dict_size dict);
  let _ = Wl.extract dict ~h:0 (triangle ()) in
  Alcotest.(check int) "three base labels" 3 (Wl.dict_size dict);
  let _ = Wl.extract dict ~h:1 (triangle ()) in
  let after_h1 = Wl.dict_size dict in
  Alcotest.(check bool) "h=1 adds composed labels" true (after_h1 > 3);
  (* Re-extracting the same graph adds nothing. *)
  let _ = Wl.extract dict ~h:1 (triangle ()) in
  Alcotest.(check int) "idempotent" after_h1 (Wl.dict_size dict)

let test_negative_h_rejected () =
  let dict = Wl.create_dict () in
  match Wl.extract dict ~h:(-1) (triangle ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative h accepted"

let prop_deeper_h_never_less_similar_to_self =
  QCheck.Test.make ~name:"kernel with more iterations still discriminates" ~count:50
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let t1 = random_topo s1 and t2 = random_topo s2 in
      QCheck.assume (not (Topology.equal t1 t2));
      let dict = Wl.create_dict () in
      let k h =
        Wl_kernel.normalized
          (Wl.extract dict ~h (Circuit_graph.build t1))
          (Wl.extract dict ~h (Circuit_graph.build t2))
      in
      (* Deeper refinement cannot make two distinct graphs look more alike. *)
      k 2 <= k 0 +. 1e-9)

let () =
  Alcotest.run "into_graph"
    [
      ( "labeled_graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "isolated node" `Quick test_graph_isolated_node;
        ] );
      ( "circuit_graph",
        [
          Alcotest.test_case "bare topology" `Quick test_circuit_graph_bare;
          Alcotest.test_case "full topology (n=13, m=16)" `Quick test_circuit_graph_full;
          Alcotest.test_case "slot node lookup" `Quick test_slot_node;
          Alcotest.test_case "origins" `Quick test_origins;
          QCheck_alcotest.to_alcotest prop_circuit_graph_size;
        ] );
      ( "wl",
        [
          Alcotest.test_case "h=0 label counts" `Quick test_wl_h0_counts;
          Alcotest.test_case "total counts per iteration" `Quick test_wl_total_counts;
          Alcotest.test_case "node feature ids" `Quick test_wl_node_feature_ids;
          Alcotest.test_case "describe" `Quick test_wl_describe;
          Alcotest.test_case "dict sharing" `Quick test_wl_dict_sharing;
          Alcotest.test_case "count lookup" `Quick test_wl_count_lookup;
          Alcotest.test_case "dict growth" `Quick test_dict_growth;
          Alcotest.test_case "negative h rejected" `Quick test_negative_h_rejected;
          QCheck_alcotest.to_alcotest prop_deeper_h_never_less_similar_to_self;
        ] );
      ( "wl_kernel",
        [
          Alcotest.test_case "discriminates structures" `Quick test_kernel_discriminates;
          Alcotest.test_case "gm direction distinguished" `Quick test_gm_direction_distinguished;
          Alcotest.test_case "cross vector" `Quick test_cross;
          QCheck_alcotest.to_alcotest prop_kernel_symmetric;
          QCheck_alcotest.to_alcotest prop_kernel_normalized_bounds;
          QCheck_alcotest.to_alcotest prop_gram_psd;
        ] );
    ]
