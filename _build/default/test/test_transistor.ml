(* Tests for Into_transistor: the EKV device model, synthetic gm/id lookup
   tables, the behavioral-to-transistor mapping and the transistor-level
   re-evaluation. *)

module Ekv = Into_transistor.Ekv
module Gmid_table = Into_transistor.Gmid_table
module Mapping = Into_transistor.Mapping
module Tlevel = Into_transistor.Tlevel
module Topology = Into_circuit.Topology
module Params = Into_circuit.Params
module Netlist = Into_circuit.Netlist
module Perf = Into_circuit.Perf

let check_close tol = Alcotest.(check (float tol))
let tech = Ekv.default_tech

(* --- Ekv --- *)

let prop_ic_gmid_roundtrip =
  QCheck.Test.make ~name:"IC <-> gm/Id round trip" ~count:200
    QCheck.(float_range 0.01 100.0)
    (fun ic ->
      let gmid = Ekv.gm_over_id_of_ic tech ic in
      let ic' = Ekv.ic_of_gm_over_id tech gmid in
      Float.abs (ic' -. ic) /. ic < 1e-9)

let test_gmid_monotone () =
  let prev = ref infinity in
  List.iter
    (fun ic ->
      let g = Ekv.gm_over_id_of_ic tech ic in
      Alcotest.(check bool) "gm/Id decreases with IC" true (g < !prev);
      prev := g)
    [ 0.01; 0.1; 1.0; 10.0; 100.0 ]

let test_gmid_limits () =
  Alcotest.(check bool) "weak-inversion limit ~29.8 S/A" true
    (Float.abs (Ekv.max_gm_over_id tech -. 29.81) < 0.1);
  (match Ekv.ic_of_gm_over_id tech 50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "impossible gm/Id accepted");
  match Ekv.gm_over_id_of_ic tech 0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero IC accepted"

let test_size_device () =
  let d = Ekv.size_device tech ~gm:1e-3 ~gm_over_id:15.0 ~l_um:0.5 in
  Alcotest.(check bool) "positive dimensions" true (d.Ekv.w_um > 0.0);
  check_close 1e-12 "bias current" (1e-3 /. 15.0) d.Ekv.id_a;
  Alcotest.(check bool) "ro positive" true (d.Ekv.ro_ohm > 0.0);
  Alcotest.(check bool) "ft positive" true (d.Ekv.ft_hz > 0.0);
  (* Stronger inversion at equal gm is faster (smaller device). *)
  let strong = Ekv.size_device tech ~gm:1e-3 ~gm_over_id:6.0 ~l_um:0.5 in
  Alcotest.(check bool) "strong inversion is faster" true (strong.Ekv.ft_hz > d.Ekv.ft_hz);
  Alcotest.(check bool) "strong inversion is smaller" true (strong.Ekv.w_um < d.Ekv.w_um)

(* --- Gmid_table --- *)

let table = Gmid_table.generate tech

let test_table_sorted () =
  let rows = Gmid_table.rows table in
  Alcotest.(check int) "default points" 128 (Array.length rows);
  for i = 1 to Array.length rows - 1 do
    Alcotest.(check bool) "ascending gm/Id" true
      (rows.(i).Gmid_table.gm_over_id > rows.(i - 1).Gmid_table.gm_over_id)
  done

let test_table_lookup_exact () =
  let rows = Gmid_table.rows table in
  let mid = rows.(40) in
  let found = Gmid_table.lookup_by_gm_over_id table mid.Gmid_table.gm_over_id in
  check_close 1e-9 "exact node lookup" mid.Gmid_table.ic found.Gmid_table.ic

let test_table_lookup_interpolates () =
  let rows = Gmid_table.rows table in
  let a = rows.(10) and b = rows.(11) in
  let g = 0.5 *. (a.Gmid_table.gm_over_id +. b.Gmid_table.gm_over_id) in
  let r = Gmid_table.lookup_by_gm_over_id table g in
  Alcotest.(check bool) "between the nodes" true
    (r.Gmid_table.ic < a.Gmid_table.ic && r.Gmid_table.ic > b.Gmid_table.ic)

let test_table_lookup_clamps () =
  let rows = Gmid_table.rows table in
  let low = Gmid_table.lookup_by_gm_over_id table 0.001 in
  check_close 1e-9 "clamped low" rows.(0).Gmid_table.gm_over_id low.Gmid_table.gm_over_id;
  let high = Gmid_table.lookup_by_gm_over_id table 1e6 in
  check_close 1e-9 "clamped high"
    rows.(Array.length rows - 1).Gmid_table.gm_over_id
    high.Gmid_table.gm_over_id

(* --- Mapping --- *)

let nmc_netlist () =
  let t = Topology.nmc () in
  let schema = Params.schema t in
  let sizing = Params.denormalize schema (Params.default_point schema) in
  Netlist.build t ~sizing ~cl_f:10e-12

let test_mapping_stage1_diff_pair () =
  let nl = nmc_netlist () in
  let impls = Mapping.map_design table nl in
  Alcotest.(check int) "three stages mapped" 3 (List.length impls);
  let s1 = List.hd impls in
  Alcotest.(check bool) "stage1 is a diff pair" true
    (s1.Mapping.kind = Mapping.Differential_pair);
  Alcotest.(check int) "four devices" 4 (List.length s1.Mapping.devices);
  check_close 1e-15 "tail doubles the bias"
    (2.0 *. s1.Mapping.instance.Netlist.bias_a)
    s1.Mapping.branch_current_a

let test_mapping_common_source () =
  let nl = nmc_netlist () in
  let impls = Mapping.map_design table nl in
  let s2 = List.nth impls 1 in
  Alcotest.(check bool) "stage2 is common source" true
    (s2.Mapping.kind = Mapping.Common_source);
  Alcotest.(check int) "driver and load" 2 (List.length s2.Mapping.devices);
  check_close 1e-15 "branch current is the stage bias"
    s2.Mapping.instance.Netlist.bias_a s2.Mapping.branch_current_a

let test_supply_current () =
  let nl = nmc_netlist () in
  let impls = Mapping.map_design table nl in
  let total = Mapping.supply_current impls in
  let behavioral = List.fold_left (fun acc g -> acc +. g.Netlist.bias_a) 0.0 nl.Netlist.gms in
  (* The diff pair doubles stage 1, so supply current exceeds behavioral. *)
  Alcotest.(check bool) "transistor level burns more" true (total > behavioral)

let string_contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_describe () =
  let nl = nmc_netlist () in
  let impls = Mapping.map_design table nl in
  let s = Mapping.describe (List.hd impls) in
  Alcotest.(check bool) "mentions the stage" true (string_contains s "stage1")

(* --- Tlevel --- *)

let test_tlevel_process_degraded () =
  let p = Tlevel.transistor_process tech ~l_um:0.5 in
  let b = Into_circuit.Process.behavioral in
  Alcotest.(check bool) "early voltage preserved (gm/id mapping targets it)" true
    (Float.abs (p.Into_circuit.Process.va -. b.Into_circuit.Process.va) < 1e-9);
  Alcotest.(check bool) "heavier parasitics" true
    (p.Into_circuit.Process.co_floor_f > b.Into_circuit.Process.co_floor_f);
  Alcotest.(check bool) "slower extracted devices" true
    (p.Into_circuit.Process.ft_hz < b.Into_circuit.Process.ft_hz);
  Alcotest.(check bool) "miller coupling on" true
    (p.Into_circuit.Process.cross_cap_factor > 0.0)

let test_tlevel_evaluate () =
  let t = Topology.nmc () in
  let schema = Params.schema t in
  let sizing = Params.denormalize schema (Params.default_point schema) in
  match (Tlevel.evaluate t ~sizing ~cl_f:10e-12, Perf.evaluate t ~sizing ~cl_f:10e-12) with
  | Some tl, Some behavioral ->
    Alcotest.(check int) "implementations reported" 3 (List.length tl.Tlevel.impls);
    Alcotest.(check bool) "power increases" true
      (tl.Tlevel.perf.Perf.power_w > behavioral.Perf.power_w);
    Alcotest.(check bool) "fom drops at the transistor level" true
      (Perf.fom tl.Tlevel.perf ~cl_f:10e-12 < Perf.fom behavioral ~cl_f:10e-12)
  | None, _ -> Alcotest.fail "transistor-level simulation failed"
  | _, None -> Alcotest.fail "behavioral simulation failed"

let () =
  Alcotest.run "into_transistor"
    [
      ( "ekv",
        [
          Alcotest.test_case "gm/Id monotone" `Quick test_gmid_monotone;
          Alcotest.test_case "limits" `Quick test_gmid_limits;
          Alcotest.test_case "device sizing" `Quick test_size_device;
          QCheck_alcotest.to_alcotest prop_ic_gmid_roundtrip;
        ] );
      ( "gmid_table",
        [
          Alcotest.test_case "sorted rows" `Quick test_table_sorted;
          Alcotest.test_case "exact lookup" `Quick test_table_lookup_exact;
          Alcotest.test_case "interpolation" `Quick test_table_lookup_interpolates;
          Alcotest.test_case "clamping" `Quick test_table_lookup_clamps;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "stage1 diff pair" `Quick test_mapping_stage1_diff_pair;
          Alcotest.test_case "common source stages" `Quick test_mapping_common_source;
          Alcotest.test_case "supply current" `Quick test_supply_current;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "tlevel",
        [
          Alcotest.test_case "degraded process" `Quick test_tlevel_process_degraded;
          Alcotest.test_case "re-evaluation" `Quick test_tlevel_evaluate;
        ] );
    ]
