(* Tests for Into_circuit: the subcircuit algebra, the 30625-topology design
   space, parameter schemas, netlist expansion, and the MNA/AC engine
   verified against hand-computed transfer functions. *)

module Subcircuit = Into_circuit.Subcircuit
module Topology = Into_circuit.Topology
module Params = Into_circuit.Params
module Process = Into_circuit.Process
module Netlist = Into_circuit.Netlist
module Mna = Into_circuit.Mna
module Ac = Into_circuit.Ac
module Perf = Into_circuit.Perf
module Spec = Into_circuit.Spec
module Rng = Into_util.Rng

let check_close tol = Alcotest.(check (float tol))

(* --- Subcircuit --- *)

let test_type_counts () =
  Alcotest.(check int) "25 full types" 25 (List.length Subcircuit.all);
  Alcotest.(check int) "7 input types" 7 (List.length Subcircuit.gm_from_input);
  Alcotest.(check int) "5 shunt types" 5 (List.length Subcircuit.passive_only)

let test_types_distinct () =
  let distinct l = List.length (List.sort_uniq Subcircuit.compare l) = List.length l in
  Alcotest.(check bool) "all distinct" true (distinct Subcircuit.all);
  Alcotest.(check bool) "input subset of all" true
    (List.for_all (fun t -> List.mem t Subcircuit.all) Subcircuit.gm_from_input);
  Alcotest.(check bool) "shunt subset of all" true
    (List.for_all (fun t -> List.mem t Subcircuit.all) Subcircuit.passive_only)

let test_labels_distinct () =
  let labels = List.map Subcircuit.label Subcircuit.all in
  Alcotest.(check int) "labels distinct" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let test_param_kinds () =
  Alcotest.(check int) "none has no params" 0
    (List.length (Subcircuit.param_kinds Subcircuit.No_conn));
  Alcotest.(check int) "RCs has two params" 2
    (List.length (Subcircuit.param_kinds (Subcircuit.Passive (Subcircuit.Rc Subcircuit.Series))));
  Alcotest.(check int) "gm+R has three params" 3
    (List.length
       (Subcircuit.param_kinds
          (Subcircuit.Gm_with
             (Subcircuit.Plus, Subcircuit.Forward, Subcircuit.Res, Subcircuit.Series))))

let test_is_gm () =
  Alcotest.(check bool) "passive is not gm" false
    (Subcircuit.is_gm (Subcircuit.Passive Subcircuit.Single_r));
  Alcotest.(check bool) "gm is gm" true
    (Subcircuit.is_gm (Subcircuit.Gm (Subcircuit.Plus, Subcircuit.Forward)))

(* --- Topology --- *)

let test_space_size () =
  Alcotest.(check int) "30625 topologies" 30625 Topology.space_size

let prop_index_bijection =
  QCheck.Test.make ~name:"topology index bijection" ~count:500
    QCheck.(int_range 0 (Topology.space_size - 1))
    (fun idx -> Topology.to_index (Topology.of_index idx) = idx)

let test_of_index_bounds () =
  Alcotest.check_raises "negative index" (Invalid_argument "Topology.of_index: out of range")
    (fun () -> ignore (Topology.of_index (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Topology.of_index: out of range")
    (fun () -> ignore (Topology.of_index Topology.space_size))

let test_make_rejects_rule_violation () =
  (* A backward gm is not admissible on a vin-anchored slot. *)
  let bad () =
    ignore
      (Topology.make
         ~vin_v2:(Subcircuit.Gm (Subcircuit.Plus, Subcircuit.Backward))
         ~vin_vout:Subcircuit.No_conn ~v1_vout:Subcircuit.No_conn
         ~v1_gnd:Subcircuit.No_conn ~v2_gnd:Subcircuit.No_conn)
  in
  match bad () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rule violation accepted"

let prop_random_topology_valid =
  QCheck.Test.make ~name:"random topologies satisfy the rule set" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let t = Topology.random rng in
      List.for_all
        (fun slot ->
          Array.exists (Subcircuit.equal (Topology.get t slot)) (Topology.allowed slot))
        Topology.slots)

let prop_mutation_changes_topology =
  QCheck.Test.make ~name:"mutation always changes the topology" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let t = Topology.random rng in
      let t' = Topology.mutate rng t in
      Topology.hamming t t' >= 1)

let test_mutation_expected_changes () =
  let rng = Rng.create ~seed:99 in
  let n = 5000 in
  let total = ref 0 in
  for _ = 1 to n do
    let t = Topology.random rng in
    total := !total + Topology.hamming t (Topology.mutate rng t)
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* Expected ~1.17: one slot is forced when the 1/5-per-slot draw fires none. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean mutated slots %.2f in [0.9, 1.5]" mean)
    true
    (mean > 0.9 && mean < 1.5)

let test_set_get () =
  let t = Topology.nmc () in
  let t' = Topology.set t Topology.V1_gnd (Subcircuit.Passive Subcircuit.Single_c) in
  Alcotest.(check bool) "updated" true
    (Subcircuit.equal (Topology.get t' Topology.V1_gnd) (Subcircuit.Passive Subcircuit.Single_c));
  Alcotest.(check bool) "original unchanged" true
    (Subcircuit.equal (Topology.get t Topology.V1_gnd) Subcircuit.No_conn);
  Alcotest.(check int) "hamming" 1 (Topology.hamming t t')

(* --- Params --- *)

let test_schema_dims () =
  let bare = Topology.of_index 0 in
  Alcotest.(check bool) "index 0 is the bare amplifier" true
    (List.for_all
       (fun slot -> Subcircuit.equal (Topology.get bare slot) Subcircuit.No_conn)
       Topology.slots);
  Alcotest.(check int) "bare dim" 6 (Params.dim (Params.schema bare));
  Alcotest.(check int) "nmc dim" 8 (Params.dim (Params.schema (Topology.nmc ())))

let prop_normalize_roundtrip =
  QCheck.Test.make ~name:"params normalize . denormalize = id" ~count:200
    QCheck.(pair (int_range 0 (Topology.space_size - 1)) small_int)
    (fun (idx, seed) ->
      let schema = Params.schema (Topology.of_index idx) in
      let rng = Rng.create ~seed in
      let u = Params.random_point rng schema in
      let u' = Params.normalize schema (Params.denormalize schema u) in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) u u')

let test_slot_param_indices () =
  let t = Topology.nmc () in
  let schema = Params.schema t in
  Alcotest.(check (list int)) "v1-vout owns dims 6,7" [ 6; 7 ]
    (Params.slot_param_indices schema Topology.V1_vout);
  Alcotest.(check (list int)) "v1-gnd owns nothing" []
    (Params.slot_param_indices schema Topology.V1_gnd)

(* --- Netlist --- *)

let nmc_sizing gm1 gm2 gm3 gmid r c = [| gm1; gmid; gm2; gmid; gm3; gmid; r; c |]

let test_netlist_structure () =
  let nl =
    Netlist.build (Topology.nmc ()) ~sizing:(nmc_sizing 1e-4 1e-4 1e-3 10.0 1e4 1e-12)
      ~cl_f:10e-12
  in
  Alcotest.(check int) "three unknowns" 3 nl.Netlist.n_unknowns;
  Alcotest.(check int) "three transconductors" 3 (List.length nl.Netlist.gms);
  check_close 1e-15 "power = vdd * sum(gm/gmid)"
    (1.8 *. ((1e-4 +. 1e-4 +. 1e-3) /. 10.0))
    nl.Netlist.power_w

let test_netlist_internal_node () =
  let t =
    Topology.make
      ~vin_v2:
        (Subcircuit.Gm_with
           (Subcircuit.Minus, Subcircuit.Forward, Subcircuit.Res, Subcircuit.Series))
      ~vin_vout:Subcircuit.No_conn ~v1_vout:Subcircuit.No_conn
      ~v1_gnd:Subcircuit.No_conn ~v2_gnd:Subcircuit.No_conn
  in
  let schema = Params.schema t in
  let sizing = Params.denormalize schema (Params.default_point schema) in
  let nl = Netlist.build t ~sizing ~cl_f:10e-12 in
  Alcotest.(check int) "one internal node" 4 nl.Netlist.n_unknowns;
  Alcotest.(check int) "four transconductors" 4 (List.length nl.Netlist.gms)

let test_netlist_dimension_check () =
  match Netlist.build (Topology.nmc ()) ~sizing:[| 1.0 |] ~cl_f:1e-12 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad sizing accepted"

(* --- MNA against hand-computed transfer functions --- *)

(* Hand-built netlists for stamp verification; unused nodes v1/v2 get unit
   conductances to ground so the system stays regular. *)
let bare_netlist prims =
  {
    Netlist.prims =
      Netlist.Conductance (Netlist.N 0, Netlist.Gnd, 1.0)
      :: Netlist.Conductance (Netlist.N 1, Netlist.Gnd, 1.0)
      :: prims;
    n_unknowns = 3;
    power_w = 0.0;
    gms = [];
  }

let test_mna_single_stage_dc () =
  (* vin --[-gm]--> vout with R load: H(0) = -gm R. *)
  let nl =
    bare_netlist
      [
        Netlist.Vccs { ctrl = Netlist.Vin; out = Netlist.N 2; gm = -1e-3; pole_hz = 1e15 };
        Netlist.Conductance (Netlist.N 2, Netlist.Gnd, 1e-5);
        Netlist.Capacitance (Netlist.N 2, Netlist.Gnd, 1e-12);
      ]
  in
  let h = Mna.transfer nl ~freq_hz:1e-3 in
  check_close 1e-6 "DC gain -gm R" (-100.0) h.Complex.re;
  check_close 1e-6 "no imaginary part at DC" 0.0 h.Complex.im

let test_mna_pole_frequency () =
  let gm = 1e-3 and r = 1e5 and c = 1e-12 in
  let fp = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  let nl =
    bare_netlist
      [
        Netlist.Vccs { ctrl = Netlist.Vin; out = Netlist.N 2; gm = -.gm; pole_hz = 1e15 };
        Netlist.Conductance (Netlist.N 2, Netlist.Gnd, 1.0 /. r);
        Netlist.Capacitance (Netlist.N 2, Netlist.Gnd, c);
      ]
  in
  let h = Mna.transfer nl ~freq_hz:fp in
  check_close 1e-3 "magnitude -3dB at the pole" (gm *. r /. sqrt 2.0) (Complex.norm h);
  check_close 1e-3 "phase at the pole" (3.0 *. Float.pi /. 4.0) (Complex.arg h)

let test_mna_series_rc_admittance () =
  (* Divider vin --[R-C series]-- vout --[G]-- gnd: H = Y/(Y+G). *)
  let r = 1e4 and c = 1e-9 and g = 1e-4 in
  let f = 12345.0 in
  let nl =
    bare_netlist
      [
        Netlist.Series_rc (Netlist.Vin, Netlist.N 2, r, c);
        Netlist.Conductance (Netlist.N 2, Netlist.Gnd, g);
      ]
  in
  let h = Mna.transfer nl ~freq_hz:f in
  let w = 2.0 *. Float.pi *. f in
  let y =
    Complex.div { Complex.re = 0.0; im = w *. c } { Complex.re = 1.0; im = w *. r *. c }
  in
  let expected = Complex.div y (Complex.add y { Complex.re = g; im = 0.0 }) in
  check_close 1e-9 "divider re" expected.Complex.re h.Complex.re;
  check_close 1e-9 "divider im" expected.Complex.im h.Complex.im

let test_three_stage_dc_gain () =
  (* With every slot unconnected the DC gain is (gmid * va)^3. *)
  let bare = Topology.of_index 0 in
  let gmid = 10.0 in
  let sizing = [| 1e-5; gmid; 1e-5; gmid; 1e-5; gmid |] in
  let nl = Netlist.build bare ~sizing ~cl_f:10e-12 in
  let h = Mna.transfer nl ~freq_hz:1e-3 in
  let expected = (gmid *. Process.behavioral.Process.va) ** 3.0 in
  check_close (expected *. 1e-4) "analytic three-stage DC gain" expected (Complex.norm h);
  Alcotest.(check bool) "positive overall sign" true (h.Complex.re > 0.0)

(* --- AC analysis --- *)

let test_ac_bare_amplifier () =
  let bare = Topology.of_index 0 in
  let sizing = [| 1e-4; 10.0; 1e-4; 10.0; 1e-3; 10.0 |] in
  match Ac.analyze (Netlist.build bare ~sizing ~cl_f:10e-12) with
  | None -> Alcotest.fail "bare amplifier should simulate"
  | Some r ->
    check_close 0.5 "gain is (gmid va)^3 in dB"
      (60.0 *. log10 (10.0 *. Process.behavioral.Process.va))
      r.Ac.gain_db;
    Alcotest.(check bool) "unity crossing exists" true (r.Ac.gbw_hz > 0.0);
    Alcotest.(check bool) "uncompensated three-stage has poor PM" true (r.Ac.pm_deg < 55.0)

let test_ac_pm_capped () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    let t = Topology.random rng in
    let schema = Params.schema t in
    let sizing = Params.denormalize schema (Params.random_point rng schema) in
    match Ac.analyze (Netlist.build t ~sizing ~cl_f:10e-12) with
    | None -> ()
    | Some r -> Alcotest.(check bool) "pm <= 180" true (r.Ac.pm_deg <= 180.0)
  done

let test_bode_sweep () =
  let nl =
    Netlist.build (Topology.nmc ())
      ~sizing:(nmc_sizing 1e-4 1e-4 1e-3 10.0 1e4 1e-12)
      ~cl_f:10e-12
  in
  let pts = Ac.bode nl ~freqs:[| 1.0; 10.0; 100.0 |] in
  Alcotest.(check int) "three points" 3 (Array.length pts);
  let _, mag0, ph0 = pts.(0) in
  Alcotest.(check bool) "finite" true (Float.is_finite mag0 && Float.is_finite ph0)

(* --- Spec & Perf --- *)

let test_spec_lookup () =
  Alcotest.(check string) "find S-3" "S-3" (Spec.find "S-3").Spec.name;
  Alcotest.(check int) "five specs" 5 (List.length Spec.all);
  check_close 1e-18 "S-5 load" 10e-9 (Spec.find "S-5").Spec.cl_f

let test_fom_formula () =
  let p = { Perf.gain_db = 90.0; gbw_hz = 2e6; pm_deg = 60.0; power_w = 100e-6 } in
  (* FoM = 2 MHz * 10 pF / 0.1 mW = 200. *)
  check_close 1e-9 "fom" 200.0 (Perf.fom p ~cl_f:10e-12)

let perf_gen =
  QCheck.Gen.(
    map
      (fun ((gain, gbw), (pm, power)) ->
        { Perf.gain_db = gain; gbw_hz = gbw; pm_deg = pm; power_w = power })
      (pair
         (pair (float_range 0.0 150.0) (float_range 0.0 1e8))
         (pair (float_range (-90.0) 180.0) (float_range 1e-6 1e-3))))

let prop_satisfies_iff_zero_violation =
  QCheck.Test.make ~name:"satisfies <=> violation = 0" ~count:500 (QCheck.make perf_gen)
    (fun p ->
      let s = Spec.s1 in
      let sat = Perf.satisfies p s and v = Perf.violation p s in
      if sat then v = 0.0 else v >= 0.0)

let test_evaluate_returns_power () =
  let t = Topology.nmc () in
  let sizing = nmc_sizing 1e-4 1e-4 1e-3 10.0 1e4 1e-12 in
  match Perf.evaluate t ~sizing ~cl_f:10e-12 with
  | None -> Alcotest.fail "should simulate"
  | Some p ->
    check_close 1e-12 "power matches netlist"
      (Netlist.build t ~sizing ~cl_f:10e-12).Netlist.power_w p.Perf.power_w

(* --- Process --- *)

let test_process_model () =
  let p = Process.behavioral in
  check_close 1e-12 "bias current" 1e-5 (Process.bias_current ~gm:1e-4 ~gm_over_id:10.0);
  check_close 1e-6 "output resistance" (p.Process.va /. 1e-5)
    (Process.output_resistance p ~id:1e-5);
  Alcotest.(check bool) "weak inversion is slower" true
    (Process.transit_frequency p ~gm_over_id:25.0 < Process.transit_frequency p ~gm_over_id:5.0);
  Alcotest.(check bool) "co floor" true
    (Process.output_capacitance p ~gm:1e-9 ~gm_over_id:10.0 >= p.Process.co_floor_f)


(* --- additional edge cases --- *)

let test_subcircuit_strings_distinct () =
  let names = List.map Subcircuit.to_string Subcircuit.all in
  Alcotest.(check int) "25 distinct names" 25 (List.length (List.sort_uniq compare names))

let test_gm_instance_names () =
  let t =
    Topology.make ~vin_v2:(Subcircuit.Gm (Subcircuit.Minus, Subcircuit.Forward))
      ~vin_vout:Subcircuit.No_conn ~v1_vout:Subcircuit.No_conn ~v1_gnd:Subcircuit.No_conn
      ~v2_gnd:Subcircuit.No_conn
  in
  let schema = Params.schema t in
  let nl =
    Netlist.build t ~sizing:(Params.denormalize schema (Params.default_point schema))
      ~cl_f:1e-12
  in
  let names = List.map (fun g -> g.Netlist.gm_name) nl.Netlist.gms in
  Alcotest.(check (list string)) "stage names then slot name"
    [ "stage1"; "stage2"; "stage3"; "vin-v2.gm" ] names

let test_topology_to_string_mentions_slots () =
  let s = Topology.to_string (Topology.nmc ()) in
  List.iter
    (fun frag ->
      let nl = String.length frag and hl = String.length s in
      let rec go i = i + nl <= hl && (String.sub s i nl = frag || go (i + 1)) in
      Alcotest.(check bool) ("mentions " ^ frag) true (go 0))
    [ "vin-v2:none"; "v1-vout:RCs"; "v2-gnd:none" ]

let test_specs_differ_in_one_bound () =
  let base = Spec.s1 in
  Alcotest.(check bool) "s2 tightens gain only" true
    (Spec.s2.Spec.min_gain_db > base.Spec.min_gain_db
    && Spec.s2.Spec.min_gbw_hz = base.Spec.min_gbw_hz
    && Spec.s2.Spec.max_power_w = base.Spec.max_power_w
    && Spec.s2.Spec.cl_f = base.Spec.cl_f);
  Alcotest.(check bool) "s3 tightens gbw only" true
    (Spec.s3.Spec.min_gbw_hz > base.Spec.min_gbw_hz
    && Spec.s3.Spec.min_gain_db = base.Spec.min_gain_db);
  Alcotest.(check bool) "s4 tightens power only" true
    (Spec.s4.Spec.max_power_w < base.Spec.max_power_w);
  Alcotest.(check bool) "s5 scales the load only" true
    (Spec.s5.Spec.cl_f = 1000.0 *. base.Spec.cl_f)

let test_full_schema_dim () =
  (* The largest schema: gm+element in all three gm-capable slots plus two
     RC shunts: 6 + 3 + 3 + 3 + 2 + 2 = 19. *)
  let t =
    Topology.make
      ~vin_v2:(Subcircuit.Gm_with (Subcircuit.Minus, Subcircuit.Forward, Subcircuit.Res, Subcircuit.Series))
      ~vin_vout:(Subcircuit.Gm_with (Subcircuit.Plus, Subcircuit.Forward, Subcircuit.Cap, Subcircuit.Series))
      ~v1_vout:(Subcircuit.Gm_with (Subcircuit.Minus, Subcircuit.Backward, Subcircuit.Cap, Subcircuit.Parallel))
      ~v1_gnd:(Subcircuit.Passive (Subcircuit.Rc Subcircuit.Series))
      ~v2_gnd:(Subcircuit.Passive (Subcircuit.Rc Subcircuit.Parallel))
  in
  Alcotest.(check int) "maximal dimension" 19 (Params.dim (Params.schema t))

let prop_power_scales_with_gm =
  QCheck.Test.make ~name:"power is monotone in stage gm" ~count:50
    QCheck.(pair (float_range 1e-6 1e-3) (float_range 1.1 5.0))
    (fun (gm, factor) ->
      let bare = Topology.of_index 0 in
      let power g =
        (Netlist.build bare ~sizing:[| g; 10.0; g; 10.0; g; 10.0 |] ~cl_f:1e-12).Netlist.power_w
      in
      power (gm *. factor) > power gm)

let () =
  Alcotest.run "into_circuit"
    [
      ( "subcircuit",
        [
          Alcotest.test_case "type counts" `Quick test_type_counts;
          Alcotest.test_case "types distinct" `Quick test_types_distinct;
          Alcotest.test_case "labels distinct" `Quick test_labels_distinct;
          Alcotest.test_case "param kinds" `Quick test_param_kinds;
          Alcotest.test_case "is_gm" `Quick test_is_gm;
        ] );
      ( "topology",
        [
          Alcotest.test_case "space size" `Quick test_space_size;
          Alcotest.test_case "of_index bounds" `Quick test_of_index_bounds;
          Alcotest.test_case "rule violations rejected" `Quick test_make_rejects_rule_violation;
          Alcotest.test_case "mutation rate" `Quick test_mutation_expected_changes;
          Alcotest.test_case "set/get" `Quick test_set_get;
          QCheck_alcotest.to_alcotest prop_index_bijection;
          QCheck_alcotest.to_alcotest prop_random_topology_valid;
          QCheck_alcotest.to_alcotest prop_mutation_changes_topology;
        ] );
      ( "params",
        [
          Alcotest.test_case "schema dims" `Quick test_schema_dims;
          Alcotest.test_case "slot param indices" `Quick test_slot_param_indices;
          QCheck_alcotest.to_alcotest prop_normalize_roundtrip;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "structure" `Quick test_netlist_structure;
          Alcotest.test_case "internal node for series gm" `Quick test_netlist_internal_node;
          Alcotest.test_case "dimension check" `Quick test_netlist_dimension_check;
        ] );
      ( "mna",
        [
          Alcotest.test_case "single stage DC" `Quick test_mna_single_stage_dc;
          Alcotest.test_case "pole frequency" `Quick test_mna_pole_frequency;
          Alcotest.test_case "series RC admittance" `Quick test_mna_series_rc_admittance;
          Alcotest.test_case "three-stage DC gain" `Quick test_three_stage_dc_gain;
        ] );
      ( "ac",
        [
          Alcotest.test_case "bare amplifier" `Quick test_ac_bare_amplifier;
          Alcotest.test_case "pm capped at 180" `Quick test_ac_pm_capped;
          Alcotest.test_case "bode sweep" `Quick test_bode_sweep;
        ] );
      ( "spec-perf",
        [
          Alcotest.test_case "spec lookup" `Quick test_spec_lookup;
          Alcotest.test_case "fom formula" `Quick test_fom_formula;
          Alcotest.test_case "evaluate attaches power" `Quick test_evaluate_returns_power;
          QCheck_alcotest.to_alcotest prop_satisfies_iff_zero_violation;
        ] );
      ("process", [ Alcotest.test_case "model relations" `Quick test_process_model ]);
      ( "edge-cases",
        [
          Alcotest.test_case "subcircuit names distinct" `Quick test_subcircuit_strings_distinct;
          Alcotest.test_case "gm instance names" `Quick test_gm_instance_names;
          Alcotest.test_case "topology rendering" `Quick test_topology_to_string_mentions_slots;
          Alcotest.test_case "spec deltas" `Quick test_specs_differ_in_one_bound;
          Alcotest.test_case "maximal schema" `Quick test_full_schema_dim;
          QCheck_alcotest.to_alcotest prop_power_scales_with_gm;
        ] );
    ]
